"""Randomized waves (Gibbons & Tirthapura; SPAA 2002).

Randomized waves answer the basic-counting problem over a sliding window with
an (epsilon, delta) probabilistic guarantee.  Their distinguishing property —
and the reason the ECM-sketch paper evaluates them despite their much larger
footprint — is that they can be *losslessly* aggregated across distributed
streams: because the sampling decision for every arrival depends only on a
shared hash function applied to the arrival's unique identifier, the union of
the samples retained at different nodes is exactly the sample a centralized
wave would have retained.

Structure.  A wave consists of ``ceil(ln(1/delta))`` independent copies whose
estimates are combined by a median.  Each copy maintains ``L`` levels; level
``l`` holds a uniform sample of the arrivals at rate ``2**-l`` (an arrival
whose hashed identifier has ``z`` trailing zero bits is stored in levels
``0..z``), with each level retaining only its ``ceil(c0 / epsilon**2)`` most
recent entries.  A query for a range starting at clock ``s`` uses the lowest
level that still covers ``s`` (no entry newer than ``s`` was ever evicted for
capacity) and scales the number of retained entries newer than ``s`` by
``2**l``.

The quadratic ``1/epsilon**2`` dependence is what makes randomized waves an
order of magnitude larger than exponential histograms or deterministic waves
at equal accuracy — the central quantitative comparison of the paper's
evaluation (Figures 4–6).
"""

from __future__ import annotations

import math
import statistics
from collections import deque
from dataclasses import dataclass
from operator import attrgetter

import numpy as np

from ..core.errors import ConfigurationError, IncompatibleSketchError
from ..core.hashing import HashFamily, stable_fingerprint
from .base import SlidingWindowCounter, WindowModel, validate_delta, validate_epsilon

__all__ = ["RandomizedWave", "RandomizedWaveCopy"]

_FIELD_BITS = 32
#: Constant factor of the per-level capacity ``c0 / epsilon**2``.  Gibbons &
#: Tirthapura's analysis uses a larger constant; 4 keeps simulations tractable
#: while preserving the quadratic scaling that drives the paper's comparison.
DEFAULT_CAPACITY_CONSTANT = 4.0

#: Union size below which the O(n) NumPy selection trim loses to the adaptive
#: Python sort: the selection pays a fixed NumPy setup (clock extraction,
#: partition, index juggling) that only amortizes on unions a few times the
#: retained capacity, while Timsort gallops through the pre-sorted
#: per-contributor runs.  Measured breakeven is ~2.5-3k entries; below the
#: cutoff the merge falls back to the reference sort so the vectorized path
#: is never slower than it.
_SELECTION_CUTOFF = 3072

#: C-level clock key for the reference trim's stable sort (same ordering and
#: tie behaviour as the former ``lambda entry: entry.clock``, less call
#: overhead per element).
_BY_CLOCK = attrgetter("clock")


@dataclass(frozen=True)
class _Entry:
    """A sampled arrival retained in one wave level."""

    clock: float
    uid_hash: int


def _trailing_zeros(value: int, limit: int) -> int:
    """Number of trailing zero bits of ``value``, capped at ``limit``."""
    if value == 0:
        return limit
    zeros = 0
    while value & 1 == 0 and zeros < limit:
        value >>= 1
        zeros += 1
    return zeros


def _select_newest(
    entries: list[_Entry], per_level: int
) -> tuple[list[_Entry], float] | None:
    """The newest ``per_level`` entries, clock-ordered, plus the trim horizon.

    Equivalent to the reference trim — stable-sort everything by clock, keep
    the last ``per_level``, record the newest dropped clock — but computed
    with an O(n) NumPy partition instead of an O(n log n) sort of the whole
    union: only the kept slice is ever ordered.  Tie entries at the cutoff
    clock are kept/dropped by concatenation order, exactly as a stable sort
    would.  Returns ``None`` when the clock keys would not survive a float64
    comparison exactly (callers then fall back to the reference sort).

    Requires ``len(entries) > per_level``.
    """
    clocks = np.asarray([entry.clock for entry in entries])
    if clocks.dtype.kind == "f":
        if not np.all(np.isfinite(clocks)) or not np.all(np.abs(clocks) < float(1 << 53)):
            return None
    elif clocks.dtype.kind not in "iu":
        return None
    drop = len(entries) - per_level
    # Clock of the newest dropped entry (the `drop`-th smallest overall).
    cutoff = np.partition(clocks, drop - 1)[drop - 1]
    dropped_ties = drop - int(np.count_nonzero(clocks < cutoff))
    tie_indices = np.flatnonzero(clocks == cutoff)
    # The reference drops the earliest `dropped_ties` cutoff-clock entries
    # (stable sort keeps ties in concatenation order); the last of them is
    # the newest dropped entry, whose original clock object seeds the
    # capacity horizon.
    horizon_clock = entries[int(tie_indices[dropped_ties - 1])].clock
    kept_indices = np.concatenate(
        [tie_indices[dropped_ties:], np.flatnonzero(clocks > cutoff)]
    )
    order = np.argsort(clocks[kept_indices], kind="stable")
    kept = [entries[index] for index in kept_indices[order].tolist()]
    return kept, horizon_clock


def _splitmix64(value: int) -> int:
    """SplitMix64 finaliser: scrambles all 64 bits of ``value``.

    The level of a sampled arrival is defined by the *trailing zero bits* of
    its hashed identifier, so the hash must have well-mixed low bits.  A bare
    Carter–Wegman ``a*x + b`` does not guarantee that (an even ``a`` collapses
    the low bits entirely), hence this finalisation step.
    """
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class RandomizedWaveCopy:
    """One independent copy of the randomized wave (internal helper)."""

    def __init__(self, num_levels: int, per_level: int, hash_a: int, hash_b: int) -> None:
        self.num_levels = num_levels
        self.per_level = per_level
        self.hash_a = hash_a
        self.hash_b = hash_b
        # Level deques are allocated lazily: an ECM-RW sketch holds thousands
        # of copies and most of their levels never receive a sample, so eager
        # allocation would dominate the footprint of large deployments.
        self._levels: list[deque[_Entry] | None] = [None] * num_levels
        #: Most recent clock value ever evicted from each level because of the
        #: capacity cap.  A level is usable for a query start ``s`` only when
        #: this value is ``<= s``.
        self.capacity_horizon: list[float] = [float("-inf")] * num_levels

    @property
    def levels(self) -> list[deque[_Entry]]:
        """Materialised view of the level samples (empty deques where unused)."""
        return [bucket if bucket is not None else deque() for bucket in self._levels]

    def _level(self, index: int) -> deque[_Entry]:
        bucket = self._levels[index]
        if bucket is None:
            bucket = deque()
            self._levels[index] = bucket
        return bucket

    # ------------------------------------------------------------------ ops
    def level_of(self, uid_hash: int) -> int:
        """Sampling level assigned to an arrival identifier."""
        mixed = _splitmix64((self.hash_a * uid_hash + self.hash_b) & 0xFFFFFFFFFFFFFFFF)
        return _trailing_zeros(mixed, self.num_levels - 1)

    def add(self, clock: float, uid_hash: int) -> None:
        max_level = self.level_of(uid_hash)
        entry = _Entry(clock=clock, uid_hash=uid_hash)
        for level in range(min(max_level, self.num_levels - 1) + 1):
            bucket = self._level(level)
            bucket.append(entry)
            if len(bucket) > self.per_level:
                evicted = bucket.popleft()
                if evicted.clock > self.capacity_horizon[level]:
                    self.capacity_horizon[level] = evicted.clock

    def expire(self, threshold: float) -> None:
        for bucket in self._levels:
            if bucket is None:
                continue
            while bucket and bucket[0].clock <= threshold:
                bucket.popleft()

    def estimate(self, start: float) -> float:
        for level, bucket in enumerate(self._levels):
            if self.capacity_horizon[level] <= start:
                if bucket is None:
                    return 0.0
                in_range = sum(1 for entry in bucket if entry.clock > start)
                return float(in_range) * (2 ** level)
        # No level covers the range: fall back to the coarsest level.
        last = self.num_levels - 1
        bucket = self._levels[last]
        in_range = sum(1 for entry in bucket if entry.clock > start) if bucket else 0
        return float(in_range) * (2 ** last)

    def entry_count(self) -> int:
        return sum(len(bucket) for bucket in self._levels if bucket is not None)

    def merge_from(self, others: list[RandomizedWaveCopy], vectorized: bool = True) -> None:
        """Union this copy with others sharing the same hash coefficients.

        Each level's union is processed as one batch.  With ``vectorized``
        (the default), levels whose union is both over capacity and large
        enough to amortize the NumPy setup (``_SELECTION_CUTOFF``) are
        trimmed by an O(n) selection (:func:`_select_newest`) instead of
        fully sorting the union only to discard most of it — the dominant
        cost for dense low levels, which hold every contributor's sample.
        Smaller unions keep the adaptive Python sort: it exploits the
        pre-sorted per-contributor runs, which a flat argsort cannot, and
        below the cutoff it beats the selection outright.  Both strategies
        yield identical merged state.
        """
        for level in range(self.num_levels):
            combined: list[_Entry] = list(self._levels[level] or ())
            horizon = self.capacity_horizon[level]
            contributed = bool(combined)
            for other in others:
                if level < other.num_levels:
                    other_bucket = other._levels[level]
                    if other_bucket:
                        combined.extend(other_bucket)
                        contributed = True
                    other_horizon = other.capacity_horizon[level]
                    if other_horizon > horizon:
                        horizon = other_horizon
            selection = None
            if (
                vectorized
                and len(combined) > self.per_level
                and len(combined) >= _SELECTION_CUTOFF
            ):
                selection = _select_newest(combined, self.per_level)
            if selection is not None:
                combined, newest_dropped_clock = selection
                if newest_dropped_clock > horizon:
                    horizon = newest_dropped_clock
            else:
                combined.sort(key=_BY_CLOCK)
                if len(combined) > self.per_level:
                    dropped = combined[: -self.per_level]
                    combined = combined[-self.per_level:]
                    if dropped:
                        horizon = max(horizon, dropped[-1].clock)
            if contributed:
                self._levels[level] = deque(combined)
            self.capacity_horizon[level] = horizon


class RandomizedWave(SlidingWindowCounter):
    """(epsilon, delta)-approximate, losslessly mergeable sliding-window counter.

    Args:
        epsilon: Target relative error, in ``(0, 1)``.
        delta: Failure probability, in ``(0, 1)``.
        window: Sliding-window length ``N``.
        max_arrivals: Upper bound on arrivals per window (sizes the levels).
        model: Time-based or count-based window model.
        seed: Seed of the shared hash functions.  Waves can only be merged
            when their seeds (and all other parameters) match.
        stream_tag: Namespace mixed into auto-generated arrival identifiers so
            that arrivals observed at different nodes stay distinct.
        capacity_constant: Constant ``c0`` of the per-level capacity.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        window: float,
        max_arrivals: int,
        model: WindowModel = WindowModel.TIME_BASED,
        seed: int = 0,
        stream_tag: int = 0,
        capacity_constant: float = DEFAULT_CAPACITY_CONSTANT,
    ) -> None:
        super().__init__(window=window, model=model)
        self.epsilon = validate_epsilon(epsilon)
        self.delta = validate_delta(delta)
        if max_arrivals <= 0:
            raise ConfigurationError("max_arrivals must be positive, got %r" % (max_arrivals,))
        if capacity_constant <= 0:
            raise ConfigurationError("capacity_constant must be positive")
        self.max_arrivals = int(max_arrivals)
        self.seed = seed
        self.stream_tag = stream_tag
        self.capacity_constant = float(capacity_constant)
        self.num_copies = max(1, int(math.ceil(math.log(1.0 / self.delta))))
        self.per_level = max(4, int(math.ceil(self.capacity_constant / (self.epsilon ** 2))))
        self.num_levels = max(1, int(math.ceil(math.log2(max(2.0, float(self.max_arrivals))))) + 1)
        # Draw per-copy hash coefficients from a reproducible family.
        family = HashFamily(depth=self.num_copies, width=2 ** 61 - 3, seed=seed)
        self._copies: list[RandomizedWaveCopy] = [
            RandomizedWaveCopy(
                num_levels=self.num_levels,
                per_level=self.per_level,
                hash_a=fn.a,
                hash_b=fn.b,
            )
            for fn in family.functions
        ]
        self._total_arrivals = 0

    # ----------------------------------------------------------------- adds
    def add(self, clock: float, count: int = 1, uid: object | None = None) -> None:
        """Register ``count`` unit arrivals at clock value ``clock``.

        When ``uid`` is omitted a unique identifier is generated from the
        stream tag and the arrival rank, so that merges across nodes with
        distinct tags behave exactly like a centralized wave.
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative, got %r" % (count,))
        if count == 0:
            return
        self._advance_clock(clock)
        for _ in range(count):
            self._total_arrivals += 1
            if uid is None:
                uid_hash = stable_fingerprint((self.stream_tag, self._total_arrivals))
            else:
                uid_hash = stable_fingerprint(uid)
            for copy in self._copies:
                copy.add(clock, uid_hash)
        self._expire(clock)

    # --------------------------------------------------------------- expiry
    def _expire(self, now: float) -> None:
        threshold = now - self.window
        for copy in self._copies:
            copy.expire(threshold)

    def expire(self, now: float) -> None:
        """Drop sampled entries that have left the window ``(now - N, now]``."""
        self._expire(now)

    # -------------------------------------------------------------- queries
    def estimate(self, range_length: float | None = None, now: float | None = None) -> float:
        """Estimate the number of arrivals in the last ``range_length`` clock units."""
        start, _end = self.resolve_query_bounds(range_length, now)
        estimates = [copy.estimate(start) for copy in self._copies]
        return float(statistics.median(estimates))

    def total_arrivals(self) -> int:
        """Exact number of arrivals registered since construction."""
        return self._total_arrivals

    # ---------------------------------------------------------------- merge
    def is_compatible_with(self, other: RandomizedWave) -> bool:
        """True when ``other`` can be merged into this wave."""
        return (
            isinstance(other, RandomizedWave)
            and self.epsilon == other.epsilon
            and self.delta == other.delta
            and self.window == other.window
            and self.model == other.model
            and self.seed == other.seed
            and self.num_levels == other.num_levels
            and self.per_level == other.per_level
            and self.num_copies == other.num_copies
        )

    def merge_inplace(self, others: list[RandomizedWave], vectorized: bool = True) -> None:
        """Union the samples of ``others`` into this wave (lossless aggregation).

        Args:
            others: The waves to union into this one.
            vectorized: Use the NumPy-batched sample ordering (identical
                state; ``False`` keeps the pure-Python reference path).

        Raises:
            IncompatibleSketchError: if any input was built with different
                parameters or hash seeds.
            WindowModelError: never raised here — randomized waves support
                order-preserving aggregation for both window models because
                the sample is duplicate-insensitive; compatibility of the
                *clock domain* is still the caller's responsibility.
        """
        for other in others:
            if not self.is_compatible_with(other):
                raise IncompatibleSketchError(
                    "randomized waves must share epsilon, delta, window, seed and "
                    "dimensions to be merged"
                )
        for idx, copy in enumerate(self._copies):
            copy.merge_from([other._copies[idx] for other in others], vectorized=vectorized)
        self._total_arrivals += sum(other._total_arrivals for other in others)
        clocks = [self._last_clock] + [other._last_clock for other in others]
        known = [c for c in clocks if c is not None]
        self._last_clock = max(known) if known else None

    @classmethod
    def merged(cls, waves: list[RandomizedWave], vectorized: bool = True) -> RandomizedWave:
        """Return a new wave equal to the lossless union of ``waves``."""
        if not waves:
            raise ConfigurationError("cannot merge an empty list of waves")
        base = waves[0]
        result = cls(
            epsilon=base.epsilon,
            delta=base.delta,
            window=base.window,
            max_arrivals=base.max_arrivals,
            model=base.model,
            seed=base.seed,
            stream_tag=base.stream_tag,
            capacity_constant=base.capacity_constant,
        )
        result.merge_inplace(list(waves), vectorized=vectorized)
        return result

    # --------------------------------------------------------------- memory
    def entry_count(self) -> int:
        """Total number of retained sample entries across copies and levels."""
        return sum(copy.entry_count() for copy in self._copies)

    def memory_bytes(self) -> int:
        """Analytical footprint: clock plus identifier hash per retained entry."""
        per_entry_bits = 2 * _FIELD_BITS
        overhead_bits = (3 + self.num_copies * self.num_levels) * _FIELD_BITS
        return (self.entry_count() * per_entry_bits + overhead_bits) // 8

    def __repr__(self) -> str:
        return (
            "RandomizedWave(epsilon=%g, delta=%g, window=%g, copies=%d, levels=%d, per_level=%d)"
            % (self.epsilon, self.delta, self.window, self.num_copies, self.num_levels, self.per_level)
        )
