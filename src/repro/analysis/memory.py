"""Analytical memory bounds (paper Section 4.2 and Table 2).

These functions evaluate the asymptotic space formulas of Table 2 with
explicit constants, in bits.  They serve two purposes: (a) reproduce the
complexity comparison of Table 2 as concrete numbers, and (b) let experiments
cross-check the measured footprints (``memory_bytes()`` of the live
structures) against the worst-case bounds — measured footprints must never
exceed the bound evaluated with the same constants.
"""

from __future__ import annotations

import math

from ..core.config import CounterType
from ..core.countmin import dimensions_for_error
from ..core.errors import ConfigurationError

__all__ = [
    "g_bound",
    "exponential_histogram_bits",
    "deterministic_wave_bits",
    "randomized_wave_bits",
    "counter_bits",
    "ecm_sketch_bits",
    "ecm_sketch_bytes",
]

_FIELD_BITS = 32


def g_bound(window: float, max_arrivals: int) -> float:
    """The paper's ``g(N, S) = max(u(N, S), N)`` shortcut."""
    if window <= 0 or max_arrivals <= 0:
        raise ConfigurationError("window and max_arrivals must be positive")
    return max(float(max_arrivals), float(window))


def exponential_histogram_bits(epsilon: float, window: float, max_arrivals: int) -> float:
    """Worst-case size of one exponential histogram, in bits.

    ``O(log^2(g(N,S)) / epsilon)``: about ``(1/(2 eps) + 2)`` buckets per size
    class, ``log2(eps * u) + 1`` size classes, three 32-bit fields per bucket.
    """
    if not (0 < epsilon < 1):
        raise ConfigurationError("epsilon must be in (0, 1)")
    levels = max(1.0, math.log2(max(2.0, epsilon * max_arrivals)) + 1.0)
    per_level = math.ceil(1.0 / (2.0 * epsilon)) + 2
    buckets = levels * per_level
    return buckets * 3 * _FIELD_BITS


def deterministic_wave_bits(epsilon: float, window: float, max_arrivals: int) -> float:
    """Worst-case size of one deterministic wave, in bits.

    Same asymptotics as the exponential histogram but with ``2/epsilon + 1``
    checkpoints per level and two fields per checkpoint.
    """
    if not (0 < epsilon < 1):
        raise ConfigurationError("epsilon must be in (0, 1)")
    levels = max(1.0, math.ceil(math.log2(max(2.0, epsilon * max_arrivals))) + 1.0)
    per_level = math.ceil(2.0 / epsilon) + 1
    return levels * per_level * 2 * _FIELD_BITS


def randomized_wave_bits(
    epsilon: float,
    delta: float,
    max_arrivals: int,
    capacity_constant: float = 4.0,
) -> float:
    """Worst-case size of one randomized wave, in bits.

    ``O(log(1/delta) * log(u) / epsilon**2)`` entries of two fields each — the
    quadratic ``1/epsilon**2`` term is what separates randomized waves from
    the deterministic synopses by an order of magnitude in the paper's plots.
    """
    if not (0 < epsilon < 1) or not (0 < delta < 1):
        raise ConfigurationError("epsilon and delta must be in (0, 1)")
    copies = max(1.0, math.ceil(math.log(1.0 / delta)))
    levels = max(1.0, math.ceil(math.log2(max(2.0, float(max_arrivals)))) + 1.0)
    per_level = max(4.0, math.ceil(capacity_constant / epsilon ** 2))
    return copies * levels * per_level * 2 * _FIELD_BITS


def counter_bits(
    counter_type: CounterType,
    epsilon_sw: float,
    window: float,
    max_arrivals: int,
    delta_sw: float = 0.05,
) -> float:
    """Worst-case size of one sliding-window counter of the given type, in bits."""
    if counter_type is CounterType.EXPONENTIAL_HISTOGRAM:
        return exponential_histogram_bits(epsilon_sw, window, max_arrivals)
    if counter_type is CounterType.DETERMINISTIC_WAVE:
        return deterministic_wave_bits(epsilon_sw, window, max_arrivals)
    if counter_type is CounterType.RANDOMIZED_WAVE:
        return randomized_wave_bits(epsilon_sw, delta_sw, max_arrivals)
    raise ConfigurationError("unknown counter type %r" % (counter_type,))


def ecm_sketch_bits(
    counter_type: CounterType,
    epsilon_sw: float,
    epsilon_cm: float,
    delta: float,
    window: float,
    max_arrivals: int,
    delta_sw: float = 0.05,
) -> float:
    """Worst-case size of a whole ECM-sketch, in bits (width x depth counters)."""
    width, depth = dimensions_for_error(epsilon_cm, delta)
    per_counter = counter_bits(counter_type, epsilon_sw, window, max_arrivals, delta_sw)
    return width * depth * per_counter


def ecm_sketch_bytes(
    counter_type: CounterType,
    epsilon_sw: float,
    epsilon_cm: float,
    delta: float,
    window: float,
    max_arrivals: int,
    delta_sw: float = 0.05,
) -> float:
    """Worst-case size of a whole ECM-sketch, in bytes."""
    return ecm_sketch_bits(
        counter_type, epsilon_sw, epsilon_cm, delta, window, max_arrivals, delta_sw
    ) / 8.0
