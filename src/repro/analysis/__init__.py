"""Error metrics, memory bounds and throughput harnesses for the experiments."""

from .memory import (
    counter_bits,
    deterministic_wave_bits,
    ecm_sketch_bits,
    ecm_sketch_bytes,
    exponential_histogram_bits,
    g_bound,
    randomized_wave_bits,
)
from .metrics import (
    ErrorSummary,
    evaluate_point_queries,
    evaluate_self_join_queries,
    exponential_query_ranges,
    point_query_errors,
    self_join_error,
)
from .reporting import row_to_dict, rows_to_dicts, write_csv, write_json, write_rows
from .throughput import ThroughputResult, measure_query_rate, measure_update_rate

__all__ = [
    "ErrorSummary",
    "exponential_query_ranges",
    "point_query_errors",
    "self_join_error",
    "evaluate_point_queries",
    "evaluate_self_join_queries",
    "g_bound",
    "exponential_histogram_bits",
    "deterministic_wave_bits",
    "randomized_wave_bits",
    "counter_bits",
    "ecm_sketch_bits",
    "ecm_sketch_bytes",
    "ThroughputResult",
    "measure_update_rate",
    "measure_query_rate",
    "row_to_dict",
    "rows_to_dicts",
    "write_json",
    "write_csv",
    "write_rows",
]
