"""Update-rate measurement (paper Table 3).

Table 3 reports how many stream arrivals per second each ECM-sketch variant
sustains.  Absolute numbers depend on the host language and machine (the paper
used Java on a Xeon; we run pure Python), so the reproduction target is the
*relative ordering and rough ratios*: ECM-EH faster than ECM-DW, both roughly
an order of magnitude faster than ECM-RW.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Iterable

from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError
from ..streams.stream import Stream

__all__ = ["ThroughputResult", "measure_update_rate", "measure_query_rate"]


@dataclass
class ThroughputResult:
    """Outcome of one throughput measurement."""

    operations: int
    elapsed_seconds: float

    @property
    def rate(self) -> float:
        """Operations per second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.operations / self.elapsed_seconds


def measure_update_rate(
    sketch: ECMSketch,
    stream: Stream,
    max_records: int | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> ThroughputResult:
    """Feed a stream into a sketch and measure sustained updates per second."""
    records = stream.records
    if max_records is not None:
        records = records[:max_records]
    if not records:
        raise ConfigurationError("cannot measure throughput on an empty stream")
    start = clock()
    for record in records:
        sketch.add(record.key, record.timestamp, record.value)
    elapsed = clock() - start
    return ThroughputResult(operations=len(records), elapsed_seconds=elapsed)


def measure_query_rate(
    sketch: ECMSketch,
    keys: Iterable,
    range_length: float | None = None,
    now: float | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> ThroughputResult:
    """Measure sustained point queries per second over the given keys."""
    keys = list(keys)
    if not keys:
        raise ConfigurationError("cannot measure query throughput without keys")
    start = clock()
    for key in keys:
        sketch.point_query(key, range_length, now)
    elapsed = clock() - start
    return ThroughputResult(operations=len(keys), elapsed_seconds=elapsed)
