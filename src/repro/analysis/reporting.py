"""Export experiment results to JSON / CSV for plotting and archival.

The experiment runners (:mod:`repro.experiments`) return lists of small
dataclasses — one per table row or figure point.  This module turns any such
list into plain dictionaries and writes them to disk, so results can be
plotted with matplotlib/pandas elsewhere or attached to a report.  Derived
properties (``memory_megabytes``, ``updates_per_second``, ``ratio``, ...) are
included alongside the stored fields because they are what the paper's axes
actually show.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from collections.abc import Sequence
from typing import Any

from ..core.errors import ConfigurationError

__all__ = ["row_to_dict", "rows_to_dicts", "write_json", "write_csv", "write_rows"]


def row_to_dict(row: Any) -> dict[str, Any]:
    """Convert one experiment-row dataclass into a flat dictionary.

    Stored dataclass fields come first; computed ``@property`` values are
    appended (skipping any that fail or return non-scalar values).
    """
    if not dataclasses.is_dataclass(row) or isinstance(row, type):
        raise ConfigurationError("expected a dataclass instance, got %r" % (type(row),))
    data: dict[str, Any] = dataclasses.asdict(row)
    for name in dir(type(row)):
        if name.startswith("_") or name in data:
            continue
        attribute = getattr(type(row), name, None)
        if isinstance(attribute, property):
            try:
                value = getattr(row, name)
            except Exception:  # pragma: no cover - defensive: skip failing props
                continue
            if isinstance(value, (int, float, str, bool)) or value is None:
                data[name] = value
    return data


def rows_to_dicts(rows: Sequence[Any]) -> list[dict[str, Any]]:
    """Convert a list of experiment rows into dictionaries."""
    return [row_to_dict(row) for row in rows]


def write_json(rows: Sequence[Any], path: str | Path, indent: int = 2) -> Path:
    """Write experiment rows to a JSON file; returns the path written."""
    path = Path(path)
    payload = rows_to_dicts(rows)
    path.write_text(json.dumps(payload, indent=indent, sort_keys=True) + "\n", encoding="utf-8")
    return path


def write_csv(rows: Sequence[Any], path: str | Path) -> Path:
    """Write experiment rows to a CSV file; returns the path written.

    The header is the union of all row keys (rows of mixed types are allowed,
    missing values are left blank), so a single file can hold, for example,
    both point-query and self-join rows of Figure 4.
    """
    path = Path(path)
    dicts = rows_to_dicts(rows)
    if not dicts:
        raise ConfigurationError("cannot write an empty result set")
    fieldnames: list[str] = []
    for entry in dicts:
        for key in entry:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for entry in dicts:
            writer.writerow(entry)
    return path


def write_rows(rows: Sequence[Any], path: str | Path) -> Path:
    """Write rows to JSON or CSV depending on the file extension."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        return write_json(rows, path)
    if suffix == ".csv":
        return write_csv(rows, path)
    raise ConfigurationError(
        "unsupported output extension %r (use .json or .csv)" % (suffix,)
    )
