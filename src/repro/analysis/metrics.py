"""Observed-error metrics matching the paper's experimental methodology.

Section 7 evaluates sketches by *observed* (not worst-case) error:

* point queries: ``err = |est - true| / ||a_r||_1`` — the absolute estimation
  error normalised by the number of arrivals in the query range;
* self-joins: ``err = |est - true| / ||a_r||_1**2``.

Queries are generated with exponentially increasing ranges
``q_i = (t - 10**i, t]`` where ``t`` is the time of the last arrival, and for
every range one point query is issued *per distinct item present in the
range*.  This module reproduces that query workload and the error summaries
(average and maximum observed error) reported in Figures 4–6 and Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Sequence

from ..baselines.exact import ExactStreamSummary
from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError

__all__ = [
    "ErrorSummary",
    "exponential_query_ranges",
    "point_query_errors",
    "self_join_error",
    "evaluate_point_queries",
    "evaluate_self_join_queries",
]


@dataclass
class ErrorSummary:
    """Average / maximum observed error over a batch of queries."""

    average: float
    maximum: float
    count: int

    @classmethod
    def from_errors(cls, errors: Sequence[float]) -> ErrorSummary:
        """Summarise a list of observed errors."""
        if not errors:
            return cls(average=0.0, maximum=0.0, count=0)
        return cls(average=sum(errors) / len(errors), maximum=max(errors), count=len(errors))

    def merge(self, other: ErrorSummary) -> ErrorSummary:
        """Combine two summaries (weighted average, overall maximum)."""
        total = self.count + other.count
        if total == 0:
            return ErrorSummary(0.0, 0.0, 0)
        average = (self.average * self.count + other.average * other.count) / total
        return ErrorSummary(average=average, maximum=max(self.maximum, other.maximum), count=total)


def exponential_query_ranges(window: float, base: float = 10.0, start_exponent: int = 1) -> list[float]:
    """The paper's exponentially increasing query ranges ``10**i``, capped at the window."""
    if window <= 0:
        raise ConfigurationError("window must be positive, got %r" % (window,))
    if base <= 1:
        raise ConfigurationError("base must be greater than 1, got %r" % (base,))
    ranges: list[float] = []
    exponent = start_exponent
    while True:
        value = base ** exponent
        if value >= window:
            ranges.append(window)
            break
        ranges.append(value)
        exponent += 1
    return ranges


def point_query_errors(
    sketch: ECMSketch,
    exact: ExactStreamSummary,
    range_length: float,
    now: float | None = None,
    keys: Sequence[Hashable] | None = None,
    max_keys: int | None = None,
) -> list[float]:
    """Observed point-query errors for every distinct in-range key.

    Args:
        sketch: The sketch under evaluation.
        exact: The exact summary of the same stream.
        range_length: Query range.
        now: Right edge of the query (defaults to the last arrival).
        keys: Explicit key set; defaults to every key present in the range.
        max_keys: Optional cap on the number of evaluated keys (keeps large
            experiments tractable without changing the error statistics much).

    Returns:
        One ``|est - true| / ||a_r||_1`` value per evaluated key.  Ranges with
        no arrivals produce an empty list.
    """
    arrivals = exact.arrivals(range_length, now)
    if arrivals == 0:
        return []
    frequencies = exact.frequencies_in_range(range_length, now)
    if keys is None:
        keys = list(frequencies.keys())
    if max_keys is not None:
        keys = list(keys)[:max_keys]
    errors: list[float] = []
    for key in keys:
        estimate = sketch.point_query(key, range_length, now)
        true = frequencies.get(key, exact.frequency(key, range_length, now))
        errors.append(abs(estimate - true) / arrivals)
    return errors


def self_join_error(
    sketch: ECMSketch,
    exact: ExactStreamSummary,
    range_length: float,
    now: float | None = None,
) -> float | None:
    """Observed self-join error ``|est - true| / ||a_r||_1**2`` for one range."""
    arrivals = exact.arrivals(range_length, now)
    if arrivals == 0:
        return None
    estimate = sketch.self_join(range_length, now)
    true = exact.self_join(range_length, now)
    return abs(estimate - true) / float(arrivals) ** 2


def evaluate_point_queries(
    sketch: ECMSketch,
    exact: ExactStreamSummary,
    ranges: Sequence[float],
    now: float | None = None,
    max_keys_per_range: int | None = None,
) -> ErrorSummary:
    """Observed point-query error summary over several query ranges."""
    all_errors: list[float] = []
    for range_length in ranges:
        all_errors.extend(
            point_query_errors(sketch, exact, range_length, now, max_keys=max_keys_per_range)
        )
    return ErrorSummary.from_errors(all_errors)


def evaluate_self_join_queries(
    sketch: ECMSketch,
    exact: ExactStreamSummary,
    ranges: Sequence[float],
    now: float | None = None,
) -> ErrorSummary:
    """Observed self-join error summary over several query ranges."""
    errors: list[float] = []
    for range_length in ranges:
        error = self_join_error(sketch, exact, range_length, now)
        if error is not None:
            errors.append(error)
    return ErrorSummary.from_errors(errors)
