"""Exact baselines used to measure observed errors of the sketches."""

from .exact import ExactStreamSummary

__all__ = ["ExactStreamSummary"]
