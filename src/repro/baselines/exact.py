"""Exact sliding-window stream summaries (ground truth for every experiment).

The paper reports *observed* errors: each sketch estimate is compared with the
exact answer computed on the same query range.  :class:`ExactStreamSummary`
provides those exact answers — per-key frequencies, total arrivals, self-join
sizes, inner products and heavy hitters over arbitrary suffix ranges — by
retaining every arrival timestamp.  It is linear-space and therefore only a
measurement harness, never a competitor.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Hashable

from ..core.errors import ConfigurationError
from ..streams.stream import Stream

__all__ = ["ExactStreamSummary"]


class ExactStreamSummary:
    """Stores every arrival and answers sliding-window queries exactly.

    Args:
        window: Sliding-window length in the stream's clock unit.  Queries may
            use any range up to this length.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive, got %r" % (window,))
        self.window = float(window)
        self._per_key: dict[Hashable, list[float]] = {}
        self._all_times: list[float] = []
        self._last_clock: float | None = None

    # ----------------------------------------------------------------- adds
    def add(self, key: Hashable, clock: float, value: int = 1) -> None:
        """Register ``value`` arrivals of ``key`` at ``clock`` (in order)."""
        if value < 0:
            raise ConfigurationError("value must be non-negative")
        if self._last_clock is not None and clock < self._last_clock:
            raise ConfigurationError(
                "arrivals must be in order; got %r after %r" % (clock, self._last_clock)
            )
        self._last_clock = clock
        timestamps = self._per_key.setdefault(key, [])
        for _ in range(value):
            timestamps.append(clock)
            self._all_times.append(clock)

    def ingest(self, stream: Stream) -> None:
        """Add every record of a stream."""
        for record in stream:
            self.add(record.key, record.timestamp, record.value)

    @classmethod
    def from_stream(cls, stream: Stream, window: float) -> ExactStreamSummary:
        """Build a summary directly from a stream."""
        summary = cls(window)
        summary.ingest(stream)
        return summary

    # -------------------------------------------------------------- queries
    def _resolve(self, range_length: float | None, now: float | None) -> tuple[float, float]:
        if now is None:
            now = self._last_clock if self._last_clock is not None else 0.0
        if range_length is None or range_length > self.window:
            range_length = self.window
        return now - range_length, now

    @staticmethod
    def _count_in(timestamps: list[float], start: float, end: float) -> int:
        left = bisect_right(timestamps, start)
        right = bisect_right(timestamps, end)
        return right - left

    def frequency(
        self, key: Hashable, range_length: float | None = None, now: float | None = None
    ) -> int:
        """Exact frequency of ``key`` in the query range ``(now - r, now]``."""
        start, end = self._resolve(range_length, now)
        timestamps = self._per_key.get(key)
        if not timestamps:
            return 0
        return self._count_in(timestamps, start, end)

    def arrivals(self, range_length: float | None = None, now: float | None = None) -> int:
        """Exact total number of arrivals (the L1 norm ``||a_r||_1``)."""
        start, end = self._resolve(range_length, now)
        return self._count_in(self._all_times, start, end)

    def keys_in_range(
        self, range_length: float | None = None, now: float | None = None
    ) -> list[Hashable]:
        """Keys with at least one arrival in the query range."""
        start, end = self._resolve(range_length, now)
        present = []
        for key, timestamps in self._per_key.items():
            if self._count_in(timestamps, start, end) > 0:
                present.append(key)
        return present

    def frequencies_in_range(
        self, range_length: float | None = None, now: float | None = None
    ) -> dict[Hashable, int]:
        """Exact frequency of every key present in the query range."""
        start, end = self._resolve(range_length, now)
        result: dict[Hashable, int] = {}
        for key, timestamps in self._per_key.items():
            count = self._count_in(timestamps, start, end)
            if count:
                result[key] = count
        return result

    def self_join(self, range_length: float | None = None, now: float | None = None) -> int:
        """Exact second frequency moment ``F2`` of the query range."""
        return sum(count * count for count in self.frequencies_in_range(range_length, now).values())

    def inner_product(
        self,
        other: ExactStreamSummary,
        range_length: float | None = None,
        now: float | None = None,
        other_now: float | None = None,
    ) -> int:
        """Exact inner product of two streams over the query range."""
        mine = self.frequencies_in_range(range_length, now)
        theirs = other.frequencies_in_range(range_length, other_now if other_now is not None else now)
        return sum(count * theirs.get(key, 0) for key, count in mine.items())

    def heavy_hitters(
        self,
        phi: float,
        range_length: float | None = None,
        now: float | None = None,
    ) -> dict[Hashable, int]:
        """Keys whose in-range frequency is at least ``phi`` times the arrivals."""
        if not (0.0 < phi <= 1.0):
            raise ConfigurationError("phi must be in (0, 1], got %r" % (phi,))
        total = self.arrivals(range_length, now)
        threshold = phi * total
        return {
            key: count
            for key, count in self.frequencies_in_range(range_length, now).items()
            if count >= threshold and count > 0
        }

    def quantile(
        self,
        fraction: float,
        range_length: float | None = None,
        now: float | None = None,
    ) -> Hashable | None:
        """Exact ``fraction``-quantile of the in-range key distribution.

        Keys are ordered by their natural sort order; the quantile is the
        smallest key whose cumulative in-range frequency reaches ``fraction``
        of the total.  Only meaningful for orderable key domains (integers).
        """
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError("fraction must be in [0, 1], got %r" % (fraction,))
        frequencies = self.frequencies_in_range(range_length, now)
        if not frequencies:
            return None
        total = sum(frequencies.values())
        target = fraction * total
        cumulative = 0
        for key in sorted(frequencies):
            cumulative += frequencies[key]
            if cumulative >= target:
                return key
        return sorted(frequencies)[-1]

    # ------------------------------------------------------------- metadata
    def total_arrivals(self) -> int:
        """Total number of arrivals ever registered."""
        return len(self._all_times)

    def distinct_keys(self) -> int:
        """Number of distinct keys ever seen."""
        return len(self._per_key)

    @property
    def last_clock(self) -> float | None:
        """Clock of the most recent arrival."""
        return self._last_clock

    def __repr__(self) -> str:
        return "ExactStreamSummary(window=%g, arrivals=%d, keys=%d)" % (
            self.window,
            self.total_arrivals(),
            self.distinct_keys(),
        )
