"""ECM-sketches: sketch-based querying of distributed sliding-window data streams.

A faithful, self-contained reproduction of Papapetrou, Garofalakis and
Deligiannakis, *Sketch-based Querying of Distributed Sliding-Window Data
Streams*, PVLDB 5(10), 2012.

Quickstart::

    from repro import ECMSketch

    sketch = ECMSketch.for_point_queries(epsilon=0.05, delta=0.05, window=3600)
    sketch.add("10.1.2.3", clock=12.0)
    sketch.add("10.1.2.3", clock=57.0)
    estimate = sketch.point_query("10.1.2.3", range_length=3600)

Package layout:

* :mod:`repro.core` — Count-Min sketches, ECM-sketches, error-budget configuration;
* :mod:`repro.windows` — exponential histograms, deterministic/randomized waves,
  exact counters, order-preserving aggregation;
* :mod:`repro.queries` — heavy hitters, range queries and quantiles over sliding windows;
* :mod:`repro.distributed` — simulated distributed deployments, hierarchical
  aggregation and geometric-method continuous monitoring;
* :mod:`repro.streams` — synthetic traces standing in for the paper's data sets;
* :mod:`repro.baselines` — exact summaries used to measure observed error;
* :mod:`repro.analysis` — error metrics, memory accounting and throughput harnesses.
"""

from .core import (
    ConfigurationError,
    CounterType,
    CountMinSketch,
    ECMConfig,
    ECMSketch,
    HashFamily,
    IncompatibleSketchError,
    ReproError,
    WindowModelError,
)
from .windows import (
    DeterministicWave,
    ExactWindowCounter,
    ExponentialHistogram,
    RandomizedWave,
    WindowModel,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ECMSketch",
    "ECMConfig",
    "CounterType",
    "CountMinSketch",
    "HashFamily",
    "WindowModel",
    "ExponentialHistogram",
    "DeterministicWave",
    "RandomizedWave",
    "ExactWindowCounter",
    "ReproError",
    "ConfigurationError",
    "IncompatibleSketchError",
    "WindowModelError",
]
