"""Higher-level sliding-window queries built on ECM-sketches (paper Section 6)."""

from .dyadic import children_of, dyadic_cover, prefix_of, prefix_range, validate_universe_bits
from .heavy_hitters import FrequentItemsTracker
from .hierarchical import HierarchicalECMSketch

__all__ = [
    "HierarchicalECMSketch",
    "FrequentItemsTracker",
    "dyadic_cover",
    "prefix_of",
    "prefix_range",
    "children_of",
    "validate_universe_bits",
]
