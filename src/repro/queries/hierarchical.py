"""Hierarchical (dyadic) stacks of ECM-sketches (paper Section 6.1).

A :class:`HierarchicalECMSketch` keeps one ECM-sketch per dyadic level of an
integer key universe.  An arrival of key ``x`` updates level ``i`` with the
prefix ``x >> i``, so the level-``i`` sketch maintains sliding-window counts
of dyadic ranges of length ``2**i``.  On top of this stack we implement:

* **heavy hitters** via group testing: descend from the coarsest level and
  expand only the dyadic ranges whose estimated sliding-window frequency
  reaches the threshold (Theorem 5);
* **range queries**: decompose the interval into at most ``2 * log|U|``
  dyadic ranges and sum the corresponding point estimates;
* **quantiles**: binary-search the key domain using prefix range queries.

Both the ingest and the query side have batched fast paths producing results
(and, for ingest, serialized state) identical to the scalar loops:
:meth:`HierarchicalECMSketch.add_many` computes all-level prefixes with NumPy
right-shifts and feeds each level's :meth:`~repro.core.ecm_sketch.ECMSketch.add_many`,
the default heavy-hitter descent walks the dyadic tree breadth-first with one
vectorized lookup per level, and :meth:`HierarchicalECMSketch.quantiles`
shares a single memo of dyadic prefix estimates across all requested
fractions.

The stack is composable exactly like individual ECM-sketches: aggregating the
per-level sketches of several nodes yields the stack of the union stream.
"""

from __future__ import annotations

import numbers
from collections.abc import Sequence

import numpy as np

from ..core.config import CounterType, ECMConfig
from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError, EmptyStructureError
from ..windows.base import WindowModel
from .dyadic import children_of, dyadic_cover, prefix_of, validate_universe_bits

__all__ = ["HierarchicalECMSketch"]

#: A batch of integer keys (or dyadic prefixes): a sequence of ints or an
#: integer NumPy array.
KeyBatch = Sequence[int] | np.ndarray


class HierarchicalECMSketch:
    """A stack of ECM-sketches over the dyadic levels of an integer universe.

    Args:
        universe_bits: The key universe is ``[0, 2**universe_bits)``.
        epsilon: Total point-query error budget of each level's sketch.
        delta: Failure probability of each level's sketch.
        window: Sliding-window length.
        model: Time-based or count-based window model.
        counter_type: Sliding-window counter backing every sketch.
        max_arrivals: Upper bound on arrivals per window (for wave counters).
        seed: Hash seed shared by all levels (and by mergeable peers).
        stream_tag: Node namespace for randomized-wave identifiers.
        backend: Counter-grid storage backend of every level sketch
            (``"columnar"``/``"object"``; see
            :class:`~repro.core.config.ECMConfig`).

    Example:
        >>> hist = HierarchicalECMSketch(universe_bits=10, epsilon=0.05,
        ...                              delta=0.05, window=1000)
        >>> for t in range(100):
        ...     hist.add(key=7, clock=float(t))
        >>> heavy = hist.heavy_hitters(phi=0.5)
        >>> 7 in heavy
        True
    """

    def __init__(
        self,
        universe_bits: int,
        epsilon: float,
        delta: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
        counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM,
        max_arrivals: int | None = None,
        seed: int = 0,
        stream_tag: int = 0,
        backend: str = "auto",
    ) -> None:
        self.universe_bits = validate_universe_bits(universe_bits)
        self.window = window
        self.model = model
        self.counter_type = counter_type
        self.seed = seed
        self.stream_tag = stream_tag
        self._levels: list[ECMSketch] = []
        for level in range(self.universe_bits):
            config = ECMConfig.for_point_queries(
                epsilon=epsilon,
                delta=delta,
                window=window,
                model=model,
                counter_type=counter_type,
                max_arrivals=max_arrivals,
                seed=seed + level,
                backend=backend,
            )
            self._levels.append(ECMSketch(config, stream_tag=stream_tag))
        self._total_arrivals = 0
        self._last_clock: float | None = None

    # --------------------------------------------------------------- update
    @property
    def universe_size(self) -> int:
        """Number of distinct keys representable: ``2**universe_bits``."""
        return 1 << self.universe_bits

    def add(self, key: int, clock: float, value: int = 1) -> None:
        """Register ``value`` arrivals of integer ``key`` at clock ``clock``.

        ``key`` may be any integral type — Python ``int`` or a NumPy integer
        scalar (``np.int64`` elements of a batch array included); both hash
        identically.
        """
        if not isinstance(key, numbers.Integral) or key < 0 or key >= self.universe_size:
            raise ConfigurationError(
                "key must be an integer in [0, %d), got %r" % (self.universe_size, key)
            )
        key = int(key)
        for level, sketch in enumerate(self._levels):
            sketch.add(prefix_of(key, level), clock, value)
        self._total_arrivals += value
        self._last_clock = clock

    def add_many(
        self,
        keys: KeyBatch,
        clocks: Sequence[float] | np.ndarray,
        values: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        """Batched :meth:`add`: ingest a whole chunk of integer keys at once.

        The per-level prefixes of the entire chunk are computed with one NumPy
        right-shift per level and handed to each level's
        :meth:`~repro.core.ecm_sketch.ECMSketch.add_many`, so the stack state
        is byte-for-byte identical to calling :meth:`add` once per arrival in
        order (each level sketch sees exactly the same arrival subsequence —
        levels are independent structures, so reordering work *across* levels
        cannot change any of them).

        Argument problems (length mismatch, a key outside the universe,
        negative values, out-of-order clocks) are detected before any level is
        mutated, so a failed call leaves the stack untouched.

        Args:
            keys: Batch of integer keys in ``[0, universe_size)``, in stream
                order; a list of ints or an integer NumPy array.
            clocks: Non-decreasing clock values, one per key.
            values: Optional per-key weights (defaults to 1 each).
        """
        keys_array = np.asarray(keys)
        n = int(keys_array.size)
        if keys_array.ndim != 1 or (n and not np.issubdtype(keys_array.dtype, np.integer)):
            raise ConfigurationError(
                "keys must be a one-dimensional sequence of integers, got dtype %r"
                % (keys_array.dtype,)
            )
        if len(clocks) != n:
            raise ConfigurationError(
                "clocks length %d does not match keys length %d" % (len(clocks), n)
            )
        if values is not None and len(values) != n:
            raise ConfigurationError(
                "values length %d does not match keys length %d" % (len(values), n)
            )
        if n == 0:
            return
        if int(keys_array.min()) < 0 or int(keys_array.max()) >= self.universe_size:
            raise ConfigurationError(
                "keys must be integers in [0, %d)" % (self.universe_size,)
            )
        # Normalise NumPy containers *and* NumPy scalars (e.g. a list built by
        # iterating a NumPy clock array) to plain Python scalars once, up
        # front: counters store the clock/value objects they are handed, and
        # the JSON wire format (serialization equality is the batched path's
        # correctness oracle) only accepts Python scalars.
        if isinstance(clocks, np.ndarray):
            clocks = clocks.tolist()
        else:
            clocks = [c.item() if isinstance(c, np.generic) else c for c in clocks]
        if isinstance(values, np.ndarray):
            values = values.tolist()
        elif values is not None:
            values = [v.item() if isinstance(v, np.generic) else v for v in values]
        for level, sketch in enumerate(self._levels):
            prefixes = keys_array >> level if level else keys_array
            sketch.add_many(prefixes, clocks, values)
        self._total_arrivals += n if values is None else int(sum(values))
        self._last_clock = clocks[-1]

    # -------------------------------------------------------------- queries
    def _resolve_now(self, now: float | None) -> float:
        if now is not None:
            return now
        return self._last_clock if self._last_clock is not None else 0.0

    def point_query(
        self, key: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimated sliding-window frequency of an individual key."""
        return self._levels[0].point_query(key, range_length, self._resolve_now(now))

    def point_query_many(
        self,
        keys: KeyBatch,
        range_length: float | None = None,
        now: float | None = None,
    ) -> list[float]:
        """Batched :meth:`point_query`: one estimate per key, in order.

        Keys are hashed in a single vectorized pass through the level-0
        sketch; each result equals exactly what :meth:`point_query` returns
        for that key.
        """
        return self._levels[0].point_query_many(keys, range_length, self._resolve_now(now))

    def prefix_query(
        self, prefix: int, level: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimated count of the dyadic range ``(prefix, level)``."""
        if level < 0 or level >= self.universe_bits:
            raise ConfigurationError("level must be in [0, %d)" % (self.universe_bits,))
        return self._levels[level].point_query(prefix, range_length, self._resolve_now(now))

    def prefix_query_many(
        self,
        prefixes: KeyBatch,
        level: int,
        range_length: float | None = None,
        now: float | None = None,
    ) -> list[float]:
        """Batched :meth:`prefix_query` over several prefixes of one level."""
        if level < 0 or level >= self.universe_bits:
            raise ConfigurationError("level must be in [0, %d)" % (self.universe_bits,))
        return self._levels[level].point_query_many(prefixes, range_length, self._resolve_now(now))

    def range_query(
        self, lo: int, hi: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimated number of arrivals with key in ``[lo, hi]`` in the window range."""
        now_value = self._resolve_now(now)
        total = 0.0
        for prefix, level in dyadic_cover(lo, hi, self.universe_bits):
            total += self._levels[level].point_query(prefix, range_length, now_value)
        return total

    def estimate_total(
        self, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimate of ``||a_r||_1`` from the level-0 sketch's row averages."""
        return self._levels[0].estimate_arrivals(range_length, self._resolve_now(now))

    def heavy_hitters(
        self,
        phi: float,
        range_length: float | None = None,
        now: float | None = None,
        absolute_threshold: float | None = None,
        batched: bool = True,
    ) -> dict[int, float]:
        """Group-testing detection of frequent keys (Theorem 5).

        A non-positive detection threshold — an empty query window under a
        relative ``phi``, or ``absolute_threshold <= 0`` — returns ``{}``
        immediately without descending: with no in-range arrivals there is no
        key with positive in-range frequency, and admitting estimate-zero
        prefixes would enumerate the entire ``2**universe_bits`` universe.

        Args:
            phi: Relative frequency threshold (fraction of in-range arrivals).
                Ignored when ``absolute_threshold`` is given.
            range_length: Query range.
            now: Right edge of the query range.
            absolute_threshold: Minimum number of occurrences; when given the
                detection uses it directly instead of ``phi * ||a_r||_1``.
            batched: Use the level-synchronized breadth-first descent (one
                vectorized sketch lookup per frontier level).  ``False``
                selects the scalar depth-first reference, which returns the
                same mapping (enforced by the equivalence suite).

        Returns:
            Mapping from detected key to its estimated in-range frequency.
        """
        if absolute_threshold is None:
            if not (0.0 < phi <= 1.0):
                raise ConfigurationError("phi must be in (0, 1], got %r" % (phi,))
            threshold = phi * self.estimate_total(range_length, now)
        else:
            threshold = float(absolute_threshold)
        if threshold <= 0.0:
            return {}
        now_value = self._resolve_now(now)
        if not batched:
            return self._heavy_hitters_scalar(threshold, range_length, now_value)
        # The two prefixes of the coarsest maintained level cover the
        # universe; every level of survivors is expanded with one batched
        # lookup instead of per-prefix scalar queries.  The frontier lives in
        # a plain list — ``point_query_many`` takes the vectorized path once
        # the frontier outgrows its small-batch cutoff, and converting only
        # then keeps sparse descents free of NumPy dispatch overhead.
        frontier: list[int] = [0, 1]
        for level in range(self.universe_bits - 1, 0, -1):
            estimates = self._levels[level].point_query_many(
                frontier, range_length, now_value
            )
            next_frontier: list[int] = []
            for prefix, estimate in zip(frontier, estimates, strict=False):
                if estimate >= threshold:
                    left = prefix << 1
                    next_frontier.append(left)
                    next_frontier.append(left | 1)
            if not next_frontier:
                return {}
            frontier = next_frontier
        estimates = self._levels[0].point_query_many(frontier, range_length, now_value)
        return {
            key: estimate
            for key, estimate in zip(frontier, estimates, strict=False)
            if estimate >= threshold
        }

    def _heavy_hitters_scalar(
        self, threshold: float, range_length: float | None, now_value: float
    ) -> dict[int, float]:
        """Scalar depth-first group-testing descent (reference path)."""
        result: dict[int, float] = {}
        top_level = self.universe_bits - 1
        frontier: list[tuple[int, int]] = [(0, top_level), (1, top_level)]
        while frontier:
            prefix, level = frontier.pop()
            estimate = self._levels[level].point_query(prefix, range_length, now_value)
            if estimate < threshold:
                continue
            if level == 0:
                result[prefix] = estimate
            else:
                frontier.extend(children_of(prefix, level))
        return result

    def quantile(
        self,
        fraction: float,
        range_length: float | None = None,
        now: float | None = None,
    ) -> int:
        """Approximate ``fraction``-quantile of the in-range key distribution.

        Binary-searches the smallest key ``x`` whose prefix range ``[0, x]``
        accumulates at least ``fraction`` of the estimated in-range arrivals.

        Raises:
            EmptyStructureError: when the estimated number of in-range
                arrivals is zero — an empty window has no key distribution,
                so any returned key (the old behavior silently produced key
                0) would be a bogus quantile.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError("fraction must be in [0, 1], got %r" % (fraction,))
        total = self.estimate_total(range_length, now)
        if total <= 0.0:
            raise EmptyStructureError(
                "quantile of an empty window is undefined (no in-range arrivals)"
            )
        target = fraction * total
        lo, hi = 0, self.universe_size - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.range_query(0, mid, range_length, now) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def quantiles(
        self,
        fractions: Sequence[float],
        range_length: float | None = None,
        now: float | None = None,
    ) -> list[int]:
        """Approximate quantiles for several fractions in one shared scan.

        Every fraction runs the same binary search as :meth:`quantile` (and
        returns exactly the same key), but all searches share one memo of
        dyadic prefix estimates: each ``[0, mid]`` probe decomposes into at
        most ``universe_bits`` dyadic blocks, missing blocks are fetched per
        level through one vectorized
        :meth:`~repro.core.ecm_sketch.ECMSketch.point_query_many` call, and
        neighbouring fractions — whose search paths overlap heavily near the
        top of the tree — reuse each other's estimates instead of re-querying.

        Raises:
            EmptyStructureError: when the estimated number of in-range
                arrivals is zero (see :meth:`quantile`).
        """
        for fraction in fractions:
            if not (0.0 <= fraction <= 1.0):
                raise ConfigurationError(
                    "fraction must be in [0, 1], got %r" % (fraction,)
                )
        total = self.estimate_total(range_length, now)
        if total <= 0.0:
            raise EmptyStructureError(
                "quantile of an empty window is undefined (no in-range arrivals)"
            )
        now_value = self._resolve_now(now)
        cache: dict[tuple[int, int], float] = {}

        def cumulative(upper: int) -> float:
            """Estimate of ``[0, upper]`` from memoized dyadic block estimates."""
            cover = list(dyadic_cover(0, upper, self.universe_bits))
            missing: dict[int, list[int]] = {}
            for prefix, level in cover:
                if (level, prefix) not in cache:
                    missing.setdefault(level, []).append(prefix)
            for level, prefixes in missing.items():
                estimates = self._levels[level].point_query_many(
                    prefixes, range_length, now_value
                )
                for prefix, estimate in zip(prefixes, estimates, strict=False):
                    cache[(level, prefix)] = estimate
            return sum(cache[(level, prefix)] for prefix, level in cover)

        results: list[int] = []
        for fraction in fractions:
            target = fraction * total
            lo, hi = 0, self.universe_size - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cumulative(mid) >= target:
                    hi = mid
                else:
                    lo = mid + 1
            results.append(lo)
        return results

    # ----------------------------------------------------------------- merge
    def is_compatible_with(self, other: HierarchicalECMSketch) -> bool:
        """True when two stacks can be aggregated level by level."""
        return (
            isinstance(other, HierarchicalECMSketch)
            and self.universe_bits == other.universe_bits
            and self.seed == other.seed
            and self.window == other.window
            and self.model == other.model
            and self.counter_type == other.counter_type
        )

    @classmethod
    def aggregate(
        cls,
        stacks: Sequence[HierarchicalECMSketch],
        epsilon_prime: float | None = None,
    ) -> HierarchicalECMSketch:
        """Order-preserving aggregation of hierarchical sketches (level by level)."""
        if not stacks:
            raise ConfigurationError("cannot aggregate an empty list of stacks")
        base = stacks[0]
        for other in stacks[1:]:
            if not base.is_compatible_with(other):
                raise ConfigurationError(
                    "hierarchical sketches must share universe, seed, window and counter type"
                )
        result = cls.__new__(cls)
        result.universe_bits = base.universe_bits
        result.window = base.window
        result.model = base.model
        result.counter_type = base.counter_type
        result.seed = base.seed
        result.stream_tag = base.stream_tag
        result._levels = [
            ECMSketch.aggregate([stack._levels[level] for stack in stacks], epsilon_prime)
            for level in range(base.universe_bits)
        ]
        result._total_arrivals = sum(stack._total_arrivals for stack in stacks)
        clocks = [stack._last_clock for stack in stacks if stack._last_clock is not None]
        result._last_clock = max(clocks) if clocks else None
        return result

    # ---------------------------------------------------------------- sizing
    def total_arrivals(self) -> int:
        """Exact total weight added to the stack."""
        return self._total_arrivals

    def memory_bytes(self) -> int:
        """Backing-store footprint: sum over the per-level sketches."""
        return sum(level.memory_bytes() for level in self._levels)

    def synopsis_bytes(self) -> int:
        """Paper-model (32-bit synopsis) footprint: sum over the levels."""
        return sum(level.synopsis_bytes() for level in self._levels)

    def level_sketch(self, level: int) -> ECMSketch:
        """Direct access to the sketch maintaining ranges of length ``2**level``."""
        return self._levels[level]

    def __repr__(self) -> str:
        return (
            "HierarchicalECMSketch(universe_bits=%d, levels=%d, window=%g, counter=%s)"
            % (self.universe_bits, len(self._levels), self.window, self.counter_type.value)
        )
