"""Hierarchical (dyadic) stacks of ECM-sketches (paper Section 6.1).

A :class:`HierarchicalECMSketch` keeps one ECM-sketch per dyadic level of an
integer key universe.  An arrival of key ``x`` updates level ``i`` with the
prefix ``x >> i``, so the level-``i`` sketch maintains sliding-window counts
of dyadic ranges of length ``2**i``.  On top of this stack we implement:

* **heavy hitters** via group testing: descend from the coarsest level and
  expand only the dyadic ranges whose estimated sliding-window frequency
  reaches the threshold (Theorem 5);
* **range queries**: decompose the interval into at most ``2 * log|U|``
  dyadic ranges and sum the corresponding point estimates;
* **quantiles**: binary-search the key domain using prefix range queries.

The stack is composable exactly like individual ECM-sketches: aggregating the
per-level sketches of several nodes yields the stack of the union stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import CounterType, ECMConfig
from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError
from ..windows.base import WindowModel
from .dyadic import children_of, dyadic_cover, prefix_of, validate_universe_bits

__all__ = ["HierarchicalECMSketch"]


class HierarchicalECMSketch:
    """A stack of ECM-sketches over the dyadic levels of an integer universe.

    Args:
        universe_bits: The key universe is ``[0, 2**universe_bits)``.
        epsilon: Total point-query error budget of each level's sketch.
        delta: Failure probability of each level's sketch.
        window: Sliding-window length.
        model: Time-based or count-based window model.
        counter_type: Sliding-window counter backing every sketch.
        max_arrivals: Upper bound on arrivals per window (for wave counters).
        seed: Hash seed shared by all levels (and by mergeable peers).
        stream_tag: Node namespace for randomized-wave identifiers.

    Example:
        >>> hist = HierarchicalECMSketch(universe_bits=10, epsilon=0.05,
        ...                              delta=0.05, window=1000)
        >>> for t in range(100):
        ...     hist.add(key=7, clock=float(t))
        >>> heavy = hist.heavy_hitters(phi=0.5)
        >>> 7 in heavy
        True
    """

    def __init__(
        self,
        universe_bits: int,
        epsilon: float,
        delta: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
        counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM,
        max_arrivals: Optional[int] = None,
        seed: int = 0,
        stream_tag: int = 0,
    ) -> None:
        self.universe_bits = validate_universe_bits(universe_bits)
        self.window = window
        self.model = model
        self.counter_type = counter_type
        self.seed = seed
        self.stream_tag = stream_tag
        self._levels: List[ECMSketch] = []
        for level in range(self.universe_bits):
            config = ECMConfig.for_point_queries(
                epsilon=epsilon,
                delta=delta,
                window=window,
                model=model,
                counter_type=counter_type,
                max_arrivals=max_arrivals,
                seed=seed + level,
            )
            self._levels.append(ECMSketch(config, stream_tag=stream_tag))
        self._total_arrivals = 0
        self._last_clock: Optional[float] = None

    # --------------------------------------------------------------- update
    @property
    def universe_size(self) -> int:
        """Number of distinct keys representable: ``2**universe_bits``."""
        return 1 << self.universe_bits

    def add(self, key: int, clock: float, value: int = 1) -> None:
        """Register ``value`` arrivals of integer ``key`` at clock ``clock``."""
        if not isinstance(key, int) or key < 0 or key >= self.universe_size:
            raise ConfigurationError(
                "key must be an integer in [0, %d), got %r" % (self.universe_size, key)
            )
        for level, sketch in enumerate(self._levels):
            sketch.add(prefix_of(key, level), clock, value)
        self._total_arrivals += value
        self._last_clock = clock

    # -------------------------------------------------------------- queries
    def _resolve_now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        return self._last_clock if self._last_clock is not None else 0.0

    def point_query(
        self, key: int, range_length: Optional[float] = None, now: Optional[float] = None
    ) -> float:
        """Estimated sliding-window frequency of an individual key."""
        return self._levels[0].point_query(key, range_length, self._resolve_now(now))

    def prefix_query(
        self, prefix: int, level: int, range_length: Optional[float] = None, now: Optional[float] = None
    ) -> float:
        """Estimated count of the dyadic range ``(prefix, level)``."""
        if level < 0 or level >= self.universe_bits:
            raise ConfigurationError("level must be in [0, %d)" % (self.universe_bits,))
        return self._levels[level].point_query(prefix, range_length, self._resolve_now(now))

    def range_query(
        self, lo: int, hi: int, range_length: Optional[float] = None, now: Optional[float] = None
    ) -> float:
        """Estimated number of arrivals with key in ``[lo, hi]`` in the window range."""
        now_value = self._resolve_now(now)
        total = 0.0
        for prefix, level in dyadic_cover(lo, hi, self.universe_bits):
            total += self._levels[level].point_query(prefix, range_length, now_value)
        return total

    def estimate_total(
        self, range_length: Optional[float] = None, now: Optional[float] = None
    ) -> float:
        """Estimate of ``||a_r||_1`` from the level-0 sketch's row averages."""
        return self._levels[0].estimate_arrivals(range_length, self._resolve_now(now))

    def heavy_hitters(
        self,
        phi: float,
        range_length: Optional[float] = None,
        now: Optional[float] = None,
        absolute_threshold: Optional[float] = None,
    ) -> Dict[int, float]:
        """Group-testing detection of frequent keys (Theorem 5).

        Args:
            phi: Relative frequency threshold (fraction of in-range arrivals).
                Ignored when ``absolute_threshold`` is given.
            range_length: Query range.
            now: Right edge of the query range.
            absolute_threshold: Minimum number of occurrences; when given the
                detection uses it directly instead of ``phi * ||a_r||_1``.

        Returns:
            Mapping from detected key to its estimated in-range frequency.
        """
        if absolute_threshold is None:
            if not (0.0 < phi <= 1.0):
                raise ConfigurationError("phi must be in (0, 1], got %r" % (phi,))
            threshold = phi * self.estimate_total(range_length, now)
        else:
            threshold = float(absolute_threshold)
        now_value = self._resolve_now(now)
        result: Dict[int, float] = {}
        top_level = self.universe_bits - 1
        # The two prefixes of the coarsest maintained level cover the universe.
        frontier: List[Tuple[int, int]] = [(0, top_level), (1, top_level)]
        while frontier:
            prefix, level = frontier.pop()
            estimate = self._levels[level].point_query(prefix, range_length, now_value)
            if estimate < threshold:
                continue
            if level == 0:
                result[prefix] = estimate
            else:
                frontier.extend(children_of(prefix, level))
        return result

    def quantile(
        self,
        fraction: float,
        range_length: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Approximate ``fraction``-quantile of the in-range key distribution.

        Binary-searches the smallest key ``x`` whose prefix range ``[0, x]``
        accumulates at least ``fraction`` of the estimated in-range arrivals.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError("fraction must be in [0, 1], got %r" % (fraction,))
        total = self.estimate_total(range_length, now)
        target = fraction * total
        lo, hi = 0, self.universe_size - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.range_query(0, mid, range_length, now) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def quantiles(
        self,
        fractions: Sequence[float],
        range_length: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[int]:
        """Approximate quantiles for several fractions at once."""
        return [self.quantile(fraction, range_length, now) for fraction in fractions]

    # ----------------------------------------------------------------- merge
    def is_compatible_with(self, other: "HierarchicalECMSketch") -> bool:
        """True when two stacks can be aggregated level by level."""
        return (
            isinstance(other, HierarchicalECMSketch)
            and self.universe_bits == other.universe_bits
            and self.seed == other.seed
            and self.window == other.window
            and self.model == other.model
            and self.counter_type == other.counter_type
        )

    @classmethod
    def aggregate(
        cls,
        stacks: Sequence["HierarchicalECMSketch"],
        epsilon_prime: Optional[float] = None,
    ) -> "HierarchicalECMSketch":
        """Order-preserving aggregation of hierarchical sketches (level by level)."""
        if not stacks:
            raise ConfigurationError("cannot aggregate an empty list of stacks")
        base = stacks[0]
        for other in stacks[1:]:
            if not base.is_compatible_with(other):
                raise ConfigurationError(
                    "hierarchical sketches must share universe, seed, window and counter type"
                )
        result = cls.__new__(cls)
        result.universe_bits = base.universe_bits
        result.window = base.window
        result.model = base.model
        result.counter_type = base.counter_type
        result.seed = base.seed
        result.stream_tag = base.stream_tag
        result._levels = [
            ECMSketch.aggregate([stack._levels[level] for stack in stacks], epsilon_prime)
            for level in range(base.universe_bits)
        ]
        result._total_arrivals = sum(stack._total_arrivals for stack in stacks)
        clocks = [stack._last_clock for stack in stacks if stack._last_clock is not None]
        result._last_clock = max(clocks) if clocks else None
        return result

    # ---------------------------------------------------------------- sizing
    def total_arrivals(self) -> int:
        """Exact total weight added to the stack."""
        return self._total_arrivals

    def memory_bytes(self) -> int:
        """Analytical footprint: sum over the per-level sketches."""
        return sum(level.memory_bytes() for level in self._levels)

    def level_sketch(self, level: int) -> ECMSketch:
        """Direct access to the sketch maintaining ranges of length ``2**level``."""
        return self._levels[level]

    def __repr__(self) -> str:
        return (
            "HierarchicalECMSketch(universe_bits=%d, levels=%d, window=%g, counter=%s)"
            % (self.universe_bits, len(self._levels), self.window, self.counter_type.value)
        )
