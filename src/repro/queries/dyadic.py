"""Dyadic-range decomposition over an integer key universe.

The heavy-hitter, range-query and quantile algorithms of the paper's
Section 6.1 all rest on the same machinery (inherited from Cormode &
Muthukrishnan's Count-Min paper): organise the key universe ``[0, 2**L)``
into dyadic ranges and keep one sketch per dyadic level, so that any interval
decomposes into at most ``2*L`` sketch lookups.

This module contains the purely combinatorial part: mapping keys to prefixes,
enumerating the dyadic cover of an interval, and enumerating the children of
a prefix during the group-testing descent.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..core.errors import ConfigurationError

__all__ = [
    "validate_universe_bits",
    "prefix_of",
    "prefix_range",
    "children_of",
    "dyadic_cover",
]


def validate_universe_bits(universe_bits: int) -> int:
    """Validate the number of bits of the key universe ``[0, 2**bits)``."""
    if universe_bits <= 0 or universe_bits > 62:
        raise ConfigurationError(
            "universe_bits must be in [1, 62], got %r" % (universe_bits,)
        )
    return int(universe_bits)


def prefix_of(key: int, level: int) -> int:
    """The dyadic prefix of ``key`` at ``level`` (ranges of length ``2**level``)."""
    if key < 0:
        raise ConfigurationError("keys must be non-negative integers, got %r" % (key,))
    if level < 0:
        raise ConfigurationError("level must be non-negative, got %r" % (level,))
    return key >> level


def prefix_range(prefix: int, level: int) -> tuple[int, int]:
    """The inclusive key interval ``[lo, hi]`` covered by ``prefix`` at ``level``."""
    lo = prefix << level
    hi = ((prefix + 1) << level) - 1
    return lo, hi


def children_of(prefix: int, level: int) -> list[tuple[int, int]]:
    """The two child prefixes (at ``level - 1``) of ``prefix`` at ``level``.

    Returns a list of ``(child_prefix, child_level)`` pairs; at level 0 the
    prefix is an individual key and has no children.
    """
    if level <= 0:
        return []
    return [(prefix << 1, level - 1), ((prefix << 1) | 1, level - 1)]


def dyadic_cover(lo: int, hi: int, universe_bits: int) -> Iterator[tuple[int, int]]:
    """Decompose the inclusive interval ``[lo, hi]`` into maximal dyadic ranges.

    Yields ``(prefix, level)`` pairs such that the covered intervals are
    disjoint and their union is exactly ``[lo, hi]``.  At most
    ``2 * universe_bits`` pairs are produced.  Block levels are capped at
    ``universe_bits - 1`` so that every block corresponds to a maintained
    sketch level (the full universe decomposes into its two halves).
    """
    validate_universe_bits(universe_bits)
    if lo < 0 or hi >= (1 << universe_bits):
        raise ConfigurationError(
            "interval [%d, %d] is outside the universe [0, %d)" % (lo, hi, 1 << universe_bits)
        )
    if lo > hi:
        return
    current = lo
    while current <= hi:
        # Largest dyadic block starting at `current` that stays within [lo, hi].
        level = 0
        while level < universe_bits - 1:
            next_level = level + 1
            block = 1 << next_level
            if current % block != 0 or current + block - 1 > hi:
                break
            level = next_level
        yield current >> level, level
        current += 1 << level
