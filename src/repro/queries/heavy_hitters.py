"""Frequent-item tracking over sliding windows for arbitrary key domains.

:class:`~repro.queries.hierarchical.HierarchicalECMSketch` works on integer
universes ``[0, 2**L)`` — the natural domain for IP addresses or port numbers.
Many workloads (the paper's web-page URLs and MAC addresses included) use
string keys instead; :class:`FrequentItemsTracker` bridges the gap with a
dictionary encoding: every new key is assigned the next integer code, and the
group-testing heavy-hitter machinery runs on the encoded universe.

The encoding dictionary is the only part of the structure that is not
sublinear in the number of *distinct* keys; that matches practical deployments
(e.g. Cisco's NetFlow collector keeps the key dictionary at the coordinator)
and keeps the per-update sketch costs identical to the paper's.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from ..core.config import CounterType
from ..core.errors import ConfigurationError
from ..windows.base import WindowModel
from .hierarchical import HierarchicalECMSketch

__all__ = ["FrequentItemsTracker"]


class FrequentItemsTracker:
    """Sliding-window heavy hitters over an arbitrary hashable key domain.

    Args:
        epsilon: Point-query error budget of the underlying sketches.
        delta: Failure probability of the underlying sketches.
        window: Sliding-window length.
        universe_bits: Capacity of the encoded key universe; at most
            ``2**universe_bits`` distinct keys can be tracked.
        model: Time-based or count-based window model.
        counter_type: Sliding-window counter backing the sketches.
        max_arrivals: Upper bound on arrivals per window (for wave counters).
        seed: Hash seed.

    Example:
        >>> tracker = FrequentItemsTracker(epsilon=0.05, delta=0.05,
        ...                                window=1000, universe_bits=8)
        >>> for t in range(20):
        ...     tracker.add("/index.html", clock=float(t))
        ...     tracker.add("/page/%d" % t, clock=float(t))
        >>> hitters = tracker.heavy_hitters(phi=0.3)
        >>> "/index.html" in hitters
        True
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        window: float,
        universe_bits: int = 20,
        model: WindowModel = WindowModel.TIME_BASED,
        counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM,
        max_arrivals: int | None = None,
        seed: int = 0,
        backend: str = "auto",
    ) -> None:
        self._sketch = HierarchicalECMSketch(
            universe_bits=universe_bits,
            epsilon=epsilon,
            delta=delta,
            window=window,
            model=model,
            counter_type=counter_type,
            max_arrivals=max_arrivals,
            seed=seed,
            backend=backend,
        )
        self._encoding: dict[Hashable, int] = {}
        self._decoding: list[Hashable] = []

    # -------------------------------------------------------------- encoding
    def _encode(self, key: Hashable) -> int:
        code = self._encoding.get(key)
        if code is None:
            code = len(self._decoding)
            if code >= self._sketch.universe_size:
                raise ConfigurationError(
                    "key dictionary is full (%d distinct keys); raise universe_bits"
                    % (self._sketch.universe_size,)
                )
            self._encoding[key] = code
            self._decoding.append(key)
        return code

    def _decode(self, code: int) -> Hashable:
        return self._decoding[code]

    def distinct_keys(self) -> int:
        """Number of distinct keys seen so far."""
        return len(self._decoding)

    # ---------------------------------------------------------------- update
    def add(self, key: Hashable, clock: float, value: int = 1) -> None:
        """Register ``value`` arrivals of ``key`` at clock ``clock``."""
        self._sketch.add(self._encode(key), clock, value)

    def add_many(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
    ) -> None:
        """Batched :meth:`add`: dictionary-encode a chunk and ingest it at once.

        The chunk's keys are mapped to their integer codes in a single
        encoding pass (new keys are assigned codes in first-appearance order,
        exactly as repeated :meth:`add` calls would), and the resulting code
        array goes through the stack's vectorized
        :meth:`~repro.queries.hierarchical.HierarchicalECMSketch.add_many` —
        sketch state is byte-identical to the scalar loop.

        Unlike the scalar loop, a failed chunk (dictionary overflow, invalid
        clocks or values) is atomic: neither sketch state nor the key
        dictionary is changed, so two nodes that retry corrected input end up
        with identical key→code mappings and their stacks stay mergeable.
        """
        n = len(keys)
        if len(clocks) != n:
            raise ConfigurationError(
                "clocks length %d does not match keys length %d" % (len(clocks), n)
            )
        if values is not None and len(values) != n:
            raise ConfigurationError(
                "values length %d does not match keys length %d" % (len(values), n)
            )
        if n == 0:
            return
        known_keys = len(self._decoding)
        codes = np.empty(n, dtype=np.int64)
        encode = self._encode
        try:
            for position, key in enumerate(keys):
                codes[position] = encode(key)
            self._sketch.add_many(codes, clocks, values)
        except Exception:
            for key in self._decoding[known_keys:]:
                del self._encoding[key]
            del self._decoding[known_keys:]
            raise

    # --------------------------------------------------------------- queries
    def frequency(
        self, key: Hashable, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimated sliding-window frequency of ``key`` (0 for unseen keys)."""
        code = self._encoding.get(key)
        if code is None:
            return 0.0
        return self._sketch.point_query(code, range_length, now)

    def estimate_total(
        self, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimated number of in-range arrivals."""
        return self._sketch.estimate_total(range_length, now)

    def frequency_many(
        self,
        keys: Sequence[Hashable],
        range_length: float | None = None,
        now: float | None = None,
    ) -> list[float]:
        """Batched :meth:`frequency`: one estimate per key (0 for unseen keys)."""
        known: list[int] = []
        positions: list[int] = []
        results = [0.0] * len(keys)
        for position, key in enumerate(keys):
            code = self._encoding.get(key)
            if code is not None:
                known.append(code)
                positions.append(position)
        if known:
            estimates = self._sketch.point_query_many(
                np.asarray(known, dtype=np.int64), range_length, now
            )
            for position, estimate in zip(positions, estimates, strict=False):
                results[position] = estimate
        return results

    def heavy_hitters(
        self,
        phi: float,
        range_length: float | None = None,
        now: float | None = None,
        absolute_threshold: float | None = None,
        batched: bool = True,
    ) -> dict[Hashable, float]:
        """Keys whose estimated in-range frequency reaches the threshold.

        An empty query window (or a non-positive ``absolute_threshold``)
        returns ``{}`` without descending the dyadic tree.
        """
        detected = self._sketch.heavy_hitters(
            phi=phi,
            range_length=range_length,
            now=now,
            absolute_threshold=absolute_threshold,
            batched=batched,
        )
        return {
            self._decode(code): estimate
            for code, estimate in detected.items()
            if code < len(self._decoding)
        }

    def top_k(
        self, k: int, range_length: float | None = None, now: float | None = None
    ) -> list[tuple[Hashable, float]]:
        """The ``k`` keys with the largest estimated in-range frequencies.

        Implemented by point-querying every registered key; intended for
        reporting and examples, not for the hot update path.
        """
        if k <= 0:
            raise ConfigurationError("k must be positive, got %r" % (k,))
        scored = [
            (key, self._sketch.point_query(code, range_length, now))
            for key, code in self._encoding.items()
        ]
        scored.sort(key=lambda pair: pair[1], reverse=True)
        return scored[:k]

    # ----------------------------------------------------------------- size
    def memory_bytes(self) -> int:
        """Backing-store footprint of the sketch stack (excluding the dictionary)."""
        return self._sketch.memory_bytes()

    def synopsis_bytes(self) -> int:
        """Paper-model (32-bit synopsis) footprint of the sketch stack."""
        return self._sketch.synopsis_bytes()

    def sketch(self) -> HierarchicalECMSketch:
        """The underlying hierarchical sketch (for advanced/aggregation use)."""
        return self._sketch

    def __repr__(self) -> str:
        return "FrequentItemsTracker(distinct_keys=%d, sketch=%r)" % (
            self.distinct_keys(),
            self._sketch,
        )
