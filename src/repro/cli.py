"""Command-line interface for the ECM-sketch reproduction.

Usage (installed or via ``python -m repro``)::

    python -m repro list                          # list available experiments
    python -m repro run figure4 --dataset wc98    # regenerate one experiment
    python -m repro run table3 --records 20000
    python -m repro run all --records 5000        # the full evaluation, small scale
    python -m repro demo --records 10000          # a quick end-to-end sanity demo
    python -m repro heavy-hitters --records 10000 # sliding-window heavy hitters

The ``run`` subcommand prints exactly the same tables the benchmark suite
emits, without requiring pytest; it is the lightweight entry point for
regenerating EXPERIMENTS.md numbers or exploring parameter settings.
"""

from __future__ import annotations

import argparse
import sys
import time as _time
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from .analysis.reporting import write_rows
from .baselines import ExactStreamSummary
from .core import ECMSketch, known_backend_names

if TYPE_CHECKING:
    from .core.config import ECMConfig
    from .streams.stream import Stream
from .experiments import (
    format_centralized_rows,
    format_centralized_vs_distributed_rows,
    format_complexity_rows,
    format_distributed_rows,
    format_epsilon_split_rows,
    format_merge_strategy_rows,
    format_frequent_items_rows,
    format_network_size_rows,
    format_update_rate_rows,
    run_centralized_error_experiment,
    run_centralized_vs_distributed_experiment,
    run_complexity_experiment,
    run_distributed_error_experiment,
    run_epsilon_split_ablation,
    run_frequent_items_experiment,
    run_merge_strategy_ablation,
    run_network_size_experiment,
    run_update_rate_experiment,
)
from .streams import WorldCupSyntheticTrace

__all__ = ["main", "build_parser", "EXPERIMENTS"]


def _run_figure4(args: argparse.Namespace) -> ExperimentResult:
    rows = run_centralized_error_experiment(
        dataset=args.dataset,
        epsilons=args.epsilons,
        num_records=args.records,
        max_keys_per_range=args.max_keys,
    )
    return rows, format_centralized_rows(rows)


def _run_table3(args: argparse.Namespace) -> ExperimentResult:
    rows = run_update_rate_experiment(
        dataset=args.dataset,
        num_records=args.records,
        batch_size=getattr(args, "batch_size", None),
    )
    return rows, format_update_rate_rows(rows)


def _run_figure5(args: argparse.Namespace) -> ExperimentResult:
    rows = run_distributed_error_experiment(
        dataset=args.dataset,
        epsilons=args.epsilons,
        num_records=args.records,
        num_nodes=args.nodes,
        max_keys_per_range=args.max_keys,
        workers=getattr(args, "workers", None),
        shards=getattr(args, "shards", None),
    )
    return rows, format_distributed_rows(rows)


def _run_table4(args: argparse.Namespace) -> ExperimentResult:
    rows = run_centralized_vs_distributed_experiment(
        dataset=args.dataset,
        num_records=args.records,
        num_nodes=args.nodes,
        max_keys_per_range=args.max_keys,
        workers=getattr(args, "workers", None),
        shards=getattr(args, "shards", None),
    )
    return rows, format_centralized_vs_distributed_rows(rows)


def _run_figure6(args: argparse.Namespace) -> ExperimentResult:
    rows = run_network_size_experiment(
        dataset=args.dataset,
        network_sizes=tuple(args.network_sizes),
        num_records=args.records,
        max_keys_per_range=args.max_keys,
        workers=getattr(args, "workers", None),
        shards=getattr(args, "shards", None),
    )
    return rows, format_network_size_rows(rows)


def _run_table2(args: argparse.Namespace) -> ExperimentResult:
    rows = run_complexity_experiment(
        epsilons=args.epsilons, dataset=args.dataset, num_records=args.records
    )
    return rows, format_complexity_rows(rows)


def _run_ablations(args: argparse.Namespace) -> ExperimentResult:
    split_rows = run_epsilon_split_ablation()
    merge_rows = run_merge_strategy_ablation()
    text = "%s\n\n%s" % (
        format_epsilon_split_rows(split_rows),
        format_merge_strategy_rows(merge_rows),
    )
    return list(split_rows) + list(merge_rows), text


#: Result of one experiment runner: its raw rows and the formatted table.
ExperimentResult = tuple[list[object], str]

#: Registry of experiment names understood by ``run``.
EXPERIMENTS: dict[str, Callable[[argparse.Namespace], ExperimentResult]] = {
    "table2": _run_table2,
    "figure4": _run_figure4,
    "table3": _run_table3,
    "figure5": _run_figure5,
    "table4": _run_table4,
    "figure6": _run_figure6,
    "ablations": _run_ablations,
}


def _positive_int(text: str) -> int:
    """argparse type for flags that must be strictly positive integers."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got %r" % (text,)) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("must be positive, got %d" % value)
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ECM-sketch reproduction: regenerate the paper's experiments from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run_parser.add_argument("--dataset", choices=["wc98", "snmp"], default="wc98")
    run_parser.add_argument("--records", type=int, default=8_000,
                            help="records per synthetic trace (default 8000)")
    run_parser.add_argument("--epsilons", type=float, nargs="+", default=[0.05, 0.10, 0.25])
    run_parser.add_argument("--nodes", type=int, default=None,
                            help="number of sites for the distributed experiments")
    run_parser.add_argument("--network-sizes", type=int, nargs="+", default=[1, 4, 16, 64],
                            help="network sizes for figure6")
    run_parser.add_argument("--max-keys", type=int, default=150,
                            help="cap on evaluated point-query keys per range")
    run_parser.add_argument("--output", type=str, default=None,
                            help="write the raw result rows to this .json or .csv file")
    run_parser.add_argument("--batch-size", type=_positive_int, default=None,
                            help="ingest via the batched fast path (add_many) in chunks "
                                 "of this many records; affects throughput experiments "
                                 "such as table3")
    run_parser.add_argument("--workers", type=_positive_int, default=None,
                            help="simulate distributed sites in this many worker "
                                 "processes (sharded runner); affects figure5, table4 "
                                 "and figure6")
    run_parser.add_argument("--shards", type=_positive_int, default=None,
                            help="number of shard work units for the parallel runner "
                                 "(defaults to --workers)")

    demo_parser = subparsers.add_parser("demo", help="run a quick end-to-end sanity demo")
    demo_parser.add_argument("--records", type=int, default=10_000)
    demo_parser.add_argument("--epsilon", type=float, default=0.05)
    demo_parser.add_argument("--backend", choices=["auto", *known_backend_names()],
                             default="auto",
                             help="counter-grid storage backend ('auto' lets the registry "
                                  "pick the best supported backend)")
    demo_parser.add_argument("--batch-size", type=_positive_int, default=None,
                             help="ingest via the batched fast path (add_many) in chunks "
                                  "of this many records")
    demo_parser.add_argument("--workers", type=_positive_int, default=None,
                             help="also run a sharded distributed demo across this many "
                                  "worker processes")
    demo_parser.add_argument("--shards", type=_positive_int, default=None,
                             help="number of simulated sites for the distributed demo "
                                  "(defaults to 4 x workers)")

    hh_parser = subparsers.add_parser(
        "heavy-hitters",
        help="sliding-window heavy hitters on a Zipf stream (hierarchical query engine)",
    )
    hh_parser.add_argument("--records", type=_positive_int, default=10_000,
                           help="stream length (default 10000)")
    hh_parser.add_argument("--domain", type=_positive_int, default=3_000,
                           help="number of distinct keys (default 3000)")
    hh_parser.add_argument("--zipf", type=float, default=1.2,
                           help="Zipf popularity exponent (default 1.2)")
    hh_parser.add_argument("--phis", type=float, nargs="+", default=[0.01, 0.02, 0.05],
                           help="relative heavy-hitter thresholds to sweep")
    hh_parser.add_argument("--epsilon", type=float, default=0.01,
                           help="point-query error budget of the sketches")
    hh_parser.add_argument("--universe-bits", type=_positive_int, default=12,
                           help="encoded key-universe capacity (2**bits distinct keys)")
    hh_parser.add_argument("--batch-size", type=_positive_int, default=1_024,
                           help="chunk size of the batched ingest (add_many)")
    hh_parser.add_argument("--output", type=str, default=None,
                           help="write the raw result rows to this .json or .csv file")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the live sketch service (concurrent ingest/query TCP server)",
    )
    serve_parser.add_argument("--host", type=str, default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7600,
                              help="TCP port to bind (0 picks a free port; default 7600)")
    serve_parser.add_argument("--mode", choices=["flat", "hierarchical", "multisite"],
                              default="flat",
                              help="served sketch state: one ECM-sketch over arbitrary "
                                   "keys, a hierarchical stack over an integer universe, "
                                   "or per-site sketches behind a periodic-aggregation "
                                   "coordinator")
    serve_parser.add_argument("--backend", choices=["auto", *known_backend_names()],
                              default="auto",
                              help="counter-grid storage backend ('auto' lets the registry "
                                   "pick the best supported backend)")
    serve_parser.add_argument("--epsilon", type=float, default=0.05,
                              help="total point-query error budget (default 0.05)")
    serve_parser.add_argument("--delta", type=float, default=0.05)
    serve_parser.add_argument("--window", type=float, default=1_000_000.0,
                              help="sliding-window length in clock units (default 1e6)")
    serve_parser.add_argument("--window-model", choices=["time", "count"], default="time")
    serve_parser.add_argument("--universe-bits", type=_positive_int, default=12,
                              help="key-universe capacity of the hierarchical mode")
    serve_parser.add_argument("--sites", type=_positive_int, default=4,
                              help="observation sites of the multisite mode")
    serve_parser.add_argument("--period", type=float, default=10_000.0,
                              help="aggregation period of the multisite mode, in stream "
                                   "clock units")
    serve_parser.add_argument("--batch-size", type=_positive_int, default=1_024,
                              help="micro-batch cap of the ingest loop (add_many call size)")
    serve_parser.add_argument("--queue-chunks", type=_positive_int, default=64,
                              help="ingest queue bound, in chunks (backpressure threshold)")
    serve_parser.add_argument("--expire-every", type=float, default=5.0,
                              help="seconds between background expire sweeps (0 disables)")
    serve_parser.add_argument("--snapshot-every", type=float, default=None,
                              help="seconds between periodic snapshots (requires "
                                   "--snapshot-path)")
    serve_parser.add_argument("--snapshot-path", type=str, default=None,
                              help="snapshot file (atomic replace; also the shutdown "
                                   "snapshot target)")
    serve_parser.add_argument("--restore", type=str, default=None, metavar="SNAPSHOT",
                              help="restore sketch state from this snapshot (or shard "
                                   "manifest) on boot")
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--shards", type=_positive_int, default=None,
                              help="serve through the sharded tier: partition the key "
                                   "universe (or the sites) across this many worker "
                                   "processes behind a merging router (default: one "
                                   "in-process service)")
    serve_parser.add_argument("--pool", action="store_true",
                              help="serve a multi-tenant sketch pool: every stateful "
                                   "op is namespaced by a 'tenant' id, the flags above "
                                   "become the default tenant configuration, and cold "
                                   "tenants are evicted to snapshots under --pool-dir")
    serve_parser.add_argument("--pool-dir", type=str, default=None,
                              help="durable pool directory (tenant catalog + eviction "
                                   "snapshots); required with --pool")
    serve_parser.add_argument("--memory-budget", type=_positive_int, default=None,
                              metavar="BYTES", dest="memory_budget",
                              help="resident-memory budget of the pool in bytes; "
                                   "exceeding it evicts least-recently-touched tenants")
    serve_parser.add_argument("--journal-dir", type=str, default=None,
                              help="write-ahead ingest journal directory: chunks are "
                                   "journaled before they are acknowledged, so recovery "
                                   "is snapshot + journal-tail replay (per-shard "
                                   "subdirectories under --shards)")
    serve_parser.add_argument("--journal-fsync", action="store_true",
                              help="fsync every journal append (power-loss durable) "
                                   "instead of the default flush-per-append "
                                   "(process-crash durable)")
    serve_parser.add_argument("--supervise", action="store_true",
                              help="with --shards: watch worker liveness and respawn "
                                   "dead shards automatically (snapshot restore + "
                                   "journal replay, capped exponential backoff)")

    gateway_parser = subparsers.add_parser(
        "gateway",
        help="run the HTTP/REST gateway in front of a running sketch server",
    )
    gateway_parser.add_argument("--host", type=str, default="127.0.0.1",
                                help="interface the gateway binds")
    gateway_parser.add_argument("--port", type=int, default=8080,
                                help="HTTP port to bind (0 picks a free port; "
                                     "default 8080)")
    gateway_parser.add_argument("--backend-host", type=str, default="127.0.0.1",
                                help="host of the sketch server to front")
    gateway_parser.add_argument("--backend-port", type=int, default=7600,
                                help="port of the sketch server to front")

    replay_parser = subparsers.add_parser(
        "replay",
        help="replay a synthetic trace against a running sketch service",
    )
    replay_parser.add_argument("--host", type=str, default="127.0.0.1")
    replay_parser.add_argument("--port", type=int, default=7600)
    replay_parser.add_argument("--records", type=_positive_int, default=50_000,
                               help="trace length (default 50000)")
    replay_parser.add_argument("--batch-size", type=_positive_int, default=1_024,
                               help="records per ingest request")
    replay_parser.add_argument("--rate", type=float, default=None,
                               help="target arrival rate in records/s (default: as fast "
                                    "as the server accepts)")
    replay_parser.add_argument("--query-every", type=int, default=8,
                               help="issue one query every N ingest batches (0 disables)")
    replay_parser.add_argument("--dataset", choices=["wc98", "snmp", "uniform"],
                               default="wc98",
                               help="flat-mode trace family (hierarchical servers get "
                                    "integer Zipf keys automatically)")
    replay_parser.add_argument("--seed", type=int, default=7,
                               help="trace seed (a serial reference replaying the same "
                                    "seed sees the exact same stream)")
    replay_parser.add_argument("--connections", type=_positive_int, default=1,
                               help="concurrent shard-affine ingest connections "
                                    "(capped at the server's shard count; default 1)")
    replay_parser.add_argument("--json", type=str, default=None, dest="json_out",
                               help="also write the report to this JSON file")

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the repo's AST invariant checker (reprolint) over source paths",
    )
    lint_parser.add_argument("paths", nargs="*", default=["src"],
                             help="files or directories to check (default: src)")
    lint_parser.add_argument("--format", choices=["text", "json"], default="text",
                             dest="lint_format", help="report format (default: text)")
    lint_parser.add_argument("--rules", type=str, default=None, metavar="RL001,RL002",
                             help="comma-separated subset of rule codes to run")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="print the rule catalog and exit")

    return parser


def _lint(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Delegate to ``tools.reprolint`` so contributors get ``repro lint``.

    The checker lives in the repository's ``tools/`` tree, not in the
    installed package, so this locates a checkout when ``tools`` is not
    already importable (installed-package invocation from the repo root).
    """
    try:
        from tools.reprolint.cli import main as lint_main
    except ImportError:
        root = _find_checkout_root()
        if root is None:
            out("error: cannot find the repository checkout (tools/reprolint); "
                "run from the repo root or python -m tools.reprolint directly")
            return 2
        sys.path.insert(0, root)
        from tools.reprolint.cli import main as lint_main
    argv = list(args.paths)
    argv += ["--format", args.lint_format]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.list_rules:
        argv += ["--list-rules"]
    return lint_main(argv, out=out)


def _find_checkout_root() -> str | None:
    """Nearest directory (cwd upward, then this file upward) with tools/reprolint."""
    import pathlib

    candidates = [pathlib.Path.cwd(), *pathlib.Path.cwd().resolve().parents]
    here = pathlib.Path(__file__).resolve()
    candidates += list(here.parents)
    for candidate in candidates:
        if (candidate / "tools" / "reprolint" / "__init__.py").is_file():
            return str(candidate)
    return None


def _demo(
    records: int,
    epsilon: float,
    out: Callable[[str], None],
    batch_size: int | None = None,
    workers: int | None = None,
    shards: int | None = None,
    backend: str = "auto",
) -> None:
    """A self-contained sanity demo mirroring examples/quickstart.py."""
    window = 1_000_000.0
    trace = WorldCupSyntheticTrace(num_records=records).generate()
    sketch = ECMSketch.for_point_queries(
        epsilon=epsilon, delta=0.05, window=window, backend=backend
    )
    exact = ExactStreamSummary(window=window)
    ingest_start = _time.perf_counter()
    if batch_size is None:
        for record in trace:
            sketch.add(record.key, record.timestamp)
    else:
        for chunk in trace.iter_batches(batch_size):
            sketch.add_many([r.key for r in chunk], [r.timestamp for r in chunk])
    ingest_elapsed = _time.perf_counter() - ingest_start
    for record in trace:
        exact.add(record.key, record.timestamp)
    now = trace.end_time()
    arrivals = exact.arrivals(now=now)
    worst = 0.0
    for key, truth in list(exact.frequencies_in_range(None, now).items())[:200]:
        estimate = sketch.point_query(key, now=now)
        worst = max(worst, abs(estimate - truth) / arrivals)
    out("records ingested:        %d%s" % (
        len(trace),
        "" if batch_size is None else " (batched, batch_size=%d)" % batch_size,
    ))
    out("ingestion rate:          %.0f records/s" % (len(trace) / ingest_elapsed if ingest_elapsed > 0 else float("inf")))
    out("sketch memory:           %.1f KiB (%s store; synopsis model %.1f KiB)" % (
        sketch.memory_bytes() / 1024.0,
        sketch.backend,
        sketch.synopsis_bytes() / 1024.0,
    ))
    out("worst observed error:    %.4f (guarantee: %.2f)" % (worst, epsilon))
    out("self-join estimate:      %.0f (exact %d)" % (sketch.self_join(now=now), exact.self_join(now=now)))
    distributed_ok = True
    if workers is not None or shards is not None:
        distributed_ok = _demo_distributed(
            trace, sketch.config, out, workers=workers, shards=shards
        )
    out("demo %s" % ("PASSED" if worst <= epsilon and distributed_ok else "FAILED"))


def _demo_distributed(
    trace: Stream,
    config: ECMConfig,
    out: Callable[[str], None],
    workers: int | None = None,
    shards: int | None = None,
) -> bool:
    """Sharded distributed section of the demo: parallel sites + aggregation."""
    from .distributed import DistributedDeployment

    num_sites = shards if shards is not None else 4 * (workers or 1)
    deployment = DistributedDeployment(num_nodes=num_sites, config=config)
    deployment.ingest(
        trace.reassign_round_robin(num_sites), workers=workers, shards=shards
    )
    ingest_report = deployment.last_ingest_report
    aggregate_start = _time.perf_counter()
    root = deployment.aggregate()
    aggregate_elapsed = _time.perf_counter() - aggregate_start
    report = deployment.last_report
    out("distributed sites:       %d (workers=%s, shards=%s)" % (
        num_sites,
        "1" if workers is None else workers,
        ingest_report.shards if ingest_report else "n/a",
    ))
    if ingest_report is not None:
        out("sharded ingest rate:     %.0f records/s" % ingest_report.records_per_second())
    out("aggregation time:        %.3f s (%d levels, %.2f MB shipped)" % (
        aggregate_elapsed,
        report.levels if report else 0,
        report.transfer_megabytes() if report else 0.0,
    ))
    matches = root.total_arrivals() == len(trace)
    out("root arrivals:           %d (%s)" % (
        root.total_arrivals(),
        "matches trace" if matches else "MISMATCH",
    ))
    return matches


def _serve(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Run the live sketch service until SIGTERM/SIGINT or a shutdown request."""
    import asyncio

    from .core.config import CounterType
    from .core.errors import ConfigurationError
    from .service import ServiceConfig, run_server
    from .windows.base import WindowModel

    try:
        config = ServiceConfig(
            mode=args.mode,
            epsilon=args.epsilon,
            delta=args.delta,
            window=args.window,
            model=WindowModel(args.window_model),
            counter_type=CounterType.EXPONENTIAL_HISTOGRAM,
            backend=args.backend,
            universe_bits=args.universe_bits,
            sites=args.sites,
            period=args.period,
            batch_size=args.batch_size,
            queue_chunks=args.queue_chunks,
            expire_every=args.expire_every if args.expire_every > 0 else None,
            snapshot_every=args.snapshot_every,
            snapshot_path=args.snapshot_path,
            seed=args.seed,
            shards=args.shards,
            pool=args.pool,
            pool_dir=args.pool_dir,
            memory_budget_bytes=args.memory_budget,
            journal_dir=args.journal_dir,
            journal_fsync=args.journal_fsync,
            supervise=args.supervise,
        )
    except ConfigurationError as exc:
        out("error: %s" % (exc,))
        return 2
    try:
        return asyncio.run(
            run_server(config, host=args.host, port=args.port, restore=args.restore)
        )
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        return 0


def _gateway(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Run the HTTP/REST gateway until SIGTERM/SIGINT."""
    import asyncio

    from .service.gateway import run_gateway

    try:
        return asyncio.run(
            run_gateway(
                backend_host=args.backend_host,
                backend_port=args.backend_port,
                host=args.host,
                port=args.port,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        return 0


def _replay(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Replay a synthetic trace against a running service and print the report."""
    import asyncio
    import json as _json

    from .service import run_replay
    from .service.client import ServiceRequestError

    try:
        report = asyncio.run(
            run_replay(
                host=args.host,
                port=args.port,
                records=args.records,
                batch_size=args.batch_size,
                target_rate=args.rate,
                query_every=args.query_every,
                seed=args.seed,
                dataset=args.dataset,
                connections=args.connections,
            )
        )
    except ServiceRequestError as exc:
        # e.g. replaying a second trace whose clocks start below the
        # server's high-water mark: the server rejects the first chunk.
        out("error: the service rejected the replay (%s)" % (exc,))
        return 1
    except (ConnectionError, OSError) as exc:
        out("error: could not reach the service at %s:%d (%s)" % (args.host, args.port, exc))
        return 1
    for line in report.format_lines():
        out(line)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            _json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        out("report written to %s" % args.json_out)
    return 0


def main(argv: Sequence[str] | None = None, out: Callable[[str], None] = print) -> int:
    """CLI entry point.  Returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command is None:
        parser.print_help()
        return 2

    if args.command == "list":
        out("available experiments:")
        for name in sorted(EXPERIMENTS):
            out("  %s" % name)
        out("  all (runs every experiment in sequence)")
        return 0

    if args.command == "demo":
        _demo(
            records=args.records,
            epsilon=args.epsilon,
            out=out,
            batch_size=args.batch_size,
            workers=args.workers,
            shards=args.shards,
            backend=args.backend,
        )
        return 0

    if args.command == "serve":
        return _serve(args, out)

    if args.command == "gateway":
        return _gateway(args, out)

    if args.command == "replay":
        return _replay(args, out)

    if args.command == "lint":
        return _lint(args, out)

    if args.command == "heavy-hitters":
        rows = run_frequent_items_experiment(
            num_records=args.records,
            domain_size=args.domain,
            zipf_exponent=args.zipf,
            phis=args.phis,
            epsilon=args.epsilon,
            universe_bits=args.universe_bits,
            batch_size=args.batch_size,
        )
        out("heavy hitters on a Zipf(%.2f) stream (%d records, %d distinct keys)"
            % (args.zipf, args.records, args.domain))
        out("")
        out(format_frequent_items_rows(rows))
        if args.output:
            written = write_rows(list(rows), args.output)
            out("")
            out("raw rows written to %s" % written)
        return 0

    if args.command == "run":
        names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        if args.batch_size is not None and any(name != "table3" for name in names):
            out("note: --batch-size currently affects only the table3 (update-rate) "
                "experiment; other experiments ingest per-record.")
        distributed_names = {"figure5", "table4", "figure6"}
        if (args.workers is not None or args.shards is not None) and any(
            name not in distributed_names for name in names
        ):
            out("note: --workers/--shards affect only the distributed experiments "
                "(figure5, table4, figure6); other experiments ingest per-record.")
        collected: list[object] = []
        for name in names:
            rows, table = EXPERIMENTS[name](args)
            collected.extend(rows)
            out("")
            out("=" * 72)
            out("experiment: %s (dataset=%s, records=%d)" % (name, args.dataset, args.records))
            out("=" * 72)
            out(table)
        if args.output:
            written = write_rows(collected, args.output)
            out("")
            out("raw rows written to %s" % written)
        return 0

    parser.error("unknown command %r" % (args.command,))
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
