"""Complexity comparison: Table 2 (paper Section 4.2.2).

Table 2 is analytical — it lists the asymptotic space, update and query costs
of ECM-sketches backed by exponential histograms, deterministic waves and
randomized waves.  We regenerate it in two complementary ways:

* **analytical rows** evaluate the formulas of :mod:`repro.analysis.memory`
  with concrete constants, per variant and per epsilon;
* **measured rows** build live sketches, feed them a fixed workload and report
  their actual footprint and per-update/per-query latency, so the asymptotic
  claims (linear vs quadratic dependence on ``1/epsilon``, EH/DW parity,
  RW blow-up) can be verified empirically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

from ..analysis.memory import ecm_sketch_bytes
from ..core.config import CounterType, split_point_query_deterministic, split_point_query_randomized
from .common import (
    DEFAULT_DELTA,
    PAPER_WINDOW_SECONDS,
    VARIANT_LABELS,
    build_sketch,
    load_dataset,
    max_arrivals_bound,
)

__all__ = [
    "ComplexityRow",
    "run_complexity_experiment",
    "format_complexity_rows",
]


@dataclass
class ComplexityRow:
    """One row of the Table 2 reproduction: a variant at one epsilon."""

    variant: str
    epsilon: float
    epsilon_sw: float
    epsilon_cm: float
    analytical_bytes: float
    measured_bytes: int
    update_microseconds: float
    query_microseconds: float


def run_complexity_experiment(
    epsilons: Sequence[float] = (0.05, 0.1, 0.2),
    variants: Sequence[CounterType] | None = None,
    dataset: str = "wc98",
    num_records: int | None = 10_000,
    num_queries: int = 200,
    window: float = PAPER_WINDOW_SECONDS,
    seed: int = 0,
) -> list[ComplexityRow]:
    """Regenerate Table 2 with both analytical bounds and measured costs."""
    if variants is None:
        variants = (
            CounterType.EXPONENTIAL_HISTOGRAM,
            CounterType.DETERMINISTIC_WAVE,
            CounterType.RANDOMIZED_WAVE,
        )
    stream = load_dataset(dataset, num_records=num_records)
    bound = max_arrivals_bound(stream)
    keys = stream.keys()[:num_queries]
    rows: list[ComplexityRow] = []
    for counter_type in variants:
        for epsilon in epsilons:
            if counter_type is CounterType.RANDOMIZED_WAVE:
                epsilon_sw, epsilon_cm = split_point_query_randomized(epsilon)
            else:
                epsilon_sw, epsilon_cm = split_point_query_deterministic(epsilon)
            analytical = ecm_sketch_bytes(
                counter_type=counter_type,
                epsilon_sw=epsilon_sw,
                epsilon_cm=epsilon_cm,
                delta=DEFAULT_DELTA,
                window=window,
                max_arrivals=bound,
            )
            sketch = build_sketch(
                counter_type=counter_type,
                epsilon=epsilon,
                delta=DEFAULT_DELTA,
                window=window,
                max_arrivals=bound,
                query_type="point",
                seed=seed,
            )
            start = time.perf_counter()
            for record in stream:
                sketch.add(record.key, record.timestamp, record.value)
            update_elapsed = time.perf_counter() - start

            now = stream.end_time()
            start = time.perf_counter()
            for key in keys:
                sketch.point_query(key, window / 10.0, now=now)
            query_elapsed = time.perf_counter() - start

            rows.append(
                ComplexityRow(
                    variant=VARIANT_LABELS[counter_type],
                    epsilon=epsilon,
                    epsilon_sw=epsilon_sw,
                    epsilon_cm=epsilon_cm,
                    analytical_bytes=analytical,
                    measured_bytes=sketch.synopsis_bytes(),
                    update_microseconds=update_elapsed / max(1, len(stream)) * 1e6,
                    query_microseconds=query_elapsed / max(1, len(keys)) * 1e6,
                )
            )
    return rows


def format_complexity_rows(rows: Sequence[ComplexityRow]) -> str:
    """Render the Table 2 reproduction as an aligned text table."""
    header = "%-8s %6s %8s %8s %16s %14s %12s %12s" % (
        "variant", "eps", "eps_sw", "eps_cm", "bound(bytes)", "meas(bytes)", "update(us)", "query(us)",
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-8s %6.2f %8.4f %8.4f %16.0f %14d %12.2f %12.2f"
            % (
                row.variant,
                row.epsilon,
                row.epsilon_sw,
                row.epsilon_cm,
                row.analytical_bytes,
                row.measured_bytes,
                row.update_microseconds,
                row.query_microseconds,
            )
        )
    return "\n".join(lines)
