"""Ablation studies for design choices called out in DESIGN.md.

Two ablations complement the paper's experiments:

* **epsilon split** — the paper derives the memory-optimal split of the total
  error budget between the Count-Min part and the sliding-window part
  (Section 4.1).  The ablation compares that optimal split against a naive
  50/50 split at equal total error, showing the memory advantage.
* **merge replay strategy** — the aggregation algorithm replays each bucket as
  half of its size at the bucket's start time and half at its end time.  The
  ablation compares this against replaying everything at the bucket end,
  which biases queries that cut through old buckets and inflates the observed
  aggregation error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from ..analysis.memory import ecm_sketch_bytes
from ..core.config import (
    CounterType,
    point_query_error,
    split_point_query_deterministic,
)
from ..core.errors import ConfigurationError
from ..windows.base import WindowModel
from ..windows.exponential_histogram import ExponentialHistogram
from .common import DEFAULT_DELTA, PAPER_WINDOW_SECONDS

__all__ = [
    "EpsilonSplitRow",
    "MergeStrategyRow",
    "run_epsilon_split_ablation",
    "run_merge_strategy_ablation",
    "format_epsilon_split_rows",
    "format_merge_strategy_rows",
]


@dataclass
class EpsilonSplitRow:
    """Memory cost of one epsilon-split policy at one total error budget."""

    policy: str
    epsilon: float
    epsilon_sw: float
    epsilon_cm: float
    total_error: float
    memory_bytes: float


@dataclass
class MergeStrategyRow:
    """Observed aggregation error of one bucket-replay strategy."""

    strategy: str
    epsilon: float
    num_streams: int
    average_error: float
    maximum_error: float


def _skewed_split(epsilon: float, sw_share: float) -> tuple[float, float]:
    """Give ``sw_share`` of the budget to the window error, the rest to hashing.

    ``epsilon_cm`` is derived from Theorem 1 so the combined point-query error
    still equals the target budget exactly.
    """
    epsilon_sw = epsilon * sw_share
    epsilon_cm = (epsilon - epsilon_sw) / (1.0 + epsilon_sw)
    return epsilon_sw, epsilon_cm


def run_epsilon_split_ablation(
    epsilons: Sequence[float] = (0.05, 0.1, 0.2),
    window: float = PAPER_WINDOW_SECONDS,
    max_arrivals: int = 100_000,
) -> list[EpsilonSplitRow]:
    """Compare the optimal epsilon split against window-heavy and hash-heavy splits.

    For deterministic counters and point queries the optimum is an even split
    (``eps_sw = eps_cm = sqrt(1+eps) - 1``); the skewed policies spend 80% of
    the budget on one side and show the memory penalty of getting it wrong.
    """
    rows: list[EpsilonSplitRow] = []
    for epsilon in epsilons:
        for policy, splitter in (
            ("optimal", split_point_query_deterministic),
            ("sw-heavy", lambda eps: _skewed_split(eps, 0.8)),
            ("cm-heavy", lambda eps: _skewed_split(eps, 0.2)),
        ):
            epsilon_sw, epsilon_cm = splitter(epsilon)
            rows.append(
                EpsilonSplitRow(
                    policy=policy,
                    epsilon=epsilon,
                    epsilon_sw=epsilon_sw,
                    epsilon_cm=epsilon_cm,
                    total_error=point_query_error(epsilon_sw, epsilon_cm),
                    memory_bytes=ecm_sketch_bytes(
                        counter_type=CounterType.EXPONENTIAL_HISTOGRAM,
                        epsilon_sw=epsilon_sw,
                        epsilon_cm=epsilon_cm,
                        delta=DEFAULT_DELTA,
                        window=window,
                        max_arrivals=max_arrivals,
                    ),
                )
            )
    return rows


def _merge_with_strategy(
    histograms: Sequence[ExponentialHistogram],
    strategy: str,
    epsilon_prime: float,
) -> ExponentialHistogram:
    """Merge exponential histograms replaying buckets per the given strategy."""
    if strategy not in ("half-half", "all-at-end"):
        raise ConfigurationError("unknown merge strategy %r" % (strategy,))
    window = histograms[0].window
    merged = ExponentialHistogram(epsilon=epsilon_prime, window=window, model=WindowModel.TIME_BASED)
    events: list[tuple[float, int]] = []
    for histogram in histograms:
        for bucket in histogram.iter_buckets():
            if strategy == "half-half":
                low = bucket.size // 2
                high = bucket.size - low
                if low:
                    events.append((bucket.start, low))
                if high:
                    events.append((bucket.end, high))
            else:
                events.append((bucket.end, bucket.size))
    events.sort(key=lambda event: event[0])
    for clock, count in events:
        merged.add(clock, count)
    return merged


def run_merge_strategy_ablation(
    epsilon: float = 0.05,
    num_streams: int = 8,
    arrivals_per_stream: int = 4_000,
    window: float = 50_000.0,
    query_ranges: Sequence[float] = (100.0, 1_000.0, 10_000.0, 50_000.0),
    seed: int = 17,
) -> list[MergeStrategyRow]:
    """Compare the paper's half/half bucket replay against an all-at-end replay."""
    rng = random.Random(seed)
    histograms: list[ExponentialHistogram] = []
    arrival_log: list[float] = []
    for _ in range(num_streams):
        histogram = ExponentialHistogram(epsilon=epsilon, window=window, model=WindowModel.TIME_BASED)
        clock = 0.0
        for _ in range(arrivals_per_stream):
            clock += rng.random() * (window / arrivals_per_stream) * 2.0
            histogram.add(clock)
            arrival_log.append(clock)
        histograms.append(histogram)
    now = max(arrival_log)

    rows: list[MergeStrategyRow] = []
    for strategy in ("half-half", "all-at-end"):
        merged = _merge_with_strategy(histograms, strategy, epsilon_prime=epsilon)
        errors: list[float] = []
        for range_length in query_ranges:
            true = sum(1 for t in arrival_log if now - range_length < t <= now)
            if true == 0:
                continue
            estimate = merged.estimate(range_length, now=now)
            errors.append(abs(estimate - true) / true)
        rows.append(
            MergeStrategyRow(
                strategy=strategy,
                epsilon=epsilon,
                num_streams=num_streams,
                average_error=sum(errors) / len(errors) if errors else 0.0,
                maximum_error=max(errors) if errors else 0.0,
            )
        )
    return rows


# ------------------------------------------------------------------ reporting
def format_epsilon_split_rows(rows: Sequence[EpsilonSplitRow]) -> str:
    """Render the epsilon-split ablation as an aligned text table."""
    header = "%-10s %6s %8s %8s %10s %16s" % (
        "policy", "eps", "eps_sw", "eps_cm", "total err", "memory(bytes)",
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-10s %6.2f %8.4f %8.4f %10.4f %16.0f"
            % (row.policy, row.epsilon, row.epsilon_sw, row.epsilon_cm, row.total_error, row.memory_bytes)
        )
    return "\n".join(lines)


def format_merge_strategy_rows(rows: Sequence[MergeStrategyRow]) -> str:
    """Render the merge-strategy ablation as an aligned text table."""
    header = "%-12s %6s %8s %10s %10s" % ("strategy", "eps", "streams", "avg err", "max err")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-12s %6.2f %8d %10.4f %10.4f"
            % (row.strategy, row.epsilon, row.num_streams, row.average_error, row.maximum_error)
        )
    return "\n".join(lines)
