"""Zipf-stream frequent-items experiment for the hierarchical query engine.

The paper's Section 6.1 (Theorem 5) builds sliding-window heavy hitters on a
dyadic stack of ECM-sketches.  This experiment drives a Zipf-skewed keyed
stream — the popularity profile of the WorldCup/SNMP workloads — through a
:class:`~repro.queries.heavy_hitters.FrequentItemsTracker` twice (scalar
``add`` loop and batched ``add_many``), then runs the group-testing descent
for a sweep of relative thresholds ``phi`` and scores the detections against
exact counts:

* **recall** — Theorem 5 promises that every key with true in-range frequency
  ``>= phi * ||a_r||_1`` is reported (w.h.p.);
* **precision floor** — nothing far below the ``(phi - eps)`` mark should be
  reported;
* **throughput** — scalar vs batched updates/second, plus the descent time.

One row is produced per ``phi``.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from collections.abc import Sequence

from ..core.errors import ConfigurationError
from ..queries.heavy_hitters import FrequentItemsTracker
from ..streams.generators import ZipfSampler

__all__ = [
    "FrequentItemsRow",
    "run_frequent_items_experiment",
    "format_frequent_items_rows",
]


@dataclass
class FrequentItemsRow:
    """Detection quality and throughput of one ``phi`` of the sweep."""

    phi: float
    epsilon: float
    records: int
    distinct_keys: int
    true_hitters: int
    detected: int
    recall: float
    precision_floor: float
    scalar_updates_per_second: float
    batched_updates_per_second: float
    descent_seconds: float

    @property
    def ingest_speedup(self) -> float:
        """Batched-over-scalar ingest throughput ratio."""
        if self.scalar_updates_per_second <= 0:
            return float("inf")
        return self.batched_updates_per_second / self.scalar_updates_per_second


def _zipf_keyed_stream(
    num_records: int, domain_size: int, zipf_exponent: float, seed: int
) -> list[str]:
    """Zipf-popularity key sequence (rank ``r`` drawn ∝ ``1 / r**exponent``)."""
    sampler = ZipfSampler(domain_size, zipf_exponent, seed=seed)
    return ["key-%05d" % rank for rank in sampler.sample_many(num_records)]


def run_frequent_items_experiment(
    num_records: int = 10_000,
    domain_size: int = 3_000,
    zipf_exponent: float = 1.2,
    phis: Sequence[float] = (0.01, 0.02, 0.05),
    epsilon: float = 0.01,
    delta: float = 0.05,
    universe_bits: int = 12,
    batch_size: int = 1_024,
    seed: int = 7,
) -> list[FrequentItemsRow]:
    """Run the Zipf frequent-items sweep; one row per ``phi``.

    Args:
        num_records: Stream length (all arrivals stay inside the window, so
            exact window counts equal exact stream counts).
        domain_size: Number of distinct keys the Zipf sampler can draw.
        zipf_exponent: Popularity skew (1.1–1.3 matches the paper's traces).
        phis: Relative heavy-hitter thresholds to sweep.
        epsilon: Point-query error budget of the underlying sketches.
        delta: Failure probability of the underlying sketches.
        universe_bits: Capacity of the tracker's encoded key universe.
        batch_size: Chunk size of the batched ingest.
        seed: Zipf sampler seed.
    """
    if num_records <= 0:
        raise ConfigurationError("num_records must be positive, got %r" % (num_records,))
    if batch_size <= 0:
        raise ConfigurationError("batch_size must be positive, got %r" % (batch_size,))
    for phi in phis:
        if not (0.0 < phi <= 1.0):
            raise ConfigurationError("phi must be in (0, 1], got %r" % (phi,))
    if domain_size > (1 << universe_bits):
        raise ConfigurationError(
            "domain_size %d exceeds the 2**%d key-universe capacity"
            % (domain_size, universe_bits)
        )
    keys = _zipf_keyed_stream(num_records, domain_size, zipf_exponent, seed)
    clocks = [float(index) for index in range(num_records)]
    window = float(num_records)
    truth = Counter(keys)

    def build_tracker() -> FrequentItemsTracker:
        return FrequentItemsTracker(
            epsilon=epsilon,
            delta=delta,
            window=window,
            universe_bits=universe_bits,
            seed=seed,
        )

    scalar_tracker = build_tracker()
    scalar_start = time.perf_counter()
    for key, clock in zip(keys, clocks, strict=False):
        scalar_tracker.add(key, clock)
    scalar_elapsed = time.perf_counter() - scalar_start

    tracker = build_tracker()
    batched_start = time.perf_counter()
    for start in range(0, num_records, batch_size):
        stop = start + batch_size
        tracker.add_many(keys[start:stop], clocks[start:stop])
    batched_elapsed = time.perf_counter() - batched_start

    now = clocks[-1]
    total = num_records
    rows: list[FrequentItemsRow] = []
    for phi in phis:
        descent_start = time.perf_counter()
        detected = tracker.heavy_hitters(phi=phi, now=now)
        descent_elapsed = time.perf_counter() - descent_start
        exact = {key for key, count in truth.items() if count >= phi * total}
        floor = (phi - epsilon) * total
        above_floor = sum(1 for key in detected if truth.get(key, 0) >= floor)
        rows.append(
            FrequentItemsRow(
                phi=phi,
                epsilon=epsilon,
                records=num_records,
                distinct_keys=len(truth),
                true_hitters=len(exact),
                detected=len(detected),
                recall=(
                    len(exact & set(detected)) / len(exact) if exact else 1.0
                ),
                precision_floor=(
                    above_floor / len(detected) if detected else 1.0
                ),
                scalar_updates_per_second=(
                    num_records / scalar_elapsed if scalar_elapsed > 0 else float("inf")
                ),
                batched_updates_per_second=(
                    num_records / batched_elapsed if batched_elapsed > 0 else float("inf")
                ),
                descent_seconds=descent_elapsed,
            )
        )
    return rows


def format_frequent_items_rows(rows: Sequence[FrequentItemsRow]) -> str:
    """Render the sweep as an aligned text table."""
    header = (
        "phi      true  detected  recall  >=phi-eps  scalar upd/s  batched upd/s  "
        "speedup  descent ms"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-7.4f  %4d  %8d  %6.2f  %9.2f  %12.0f  %13.0f  %6.2fx  %10.2f"
            % (
                row.phi,
                row.true_hitters,
                row.detected,
                row.recall,
                row.precision_floor,
                row.scalar_updates_per_second,
                row.batched_updates_per_second,
                row.ingest_speedup,
                row.descent_seconds * 1_000.0,
            )
        )
    return "\n".join(lines)
