"""Centralized-setup experiments: Figure 4 and Table 3 (paper Section 7.2).

Figure 4 plots, for each data set and each ECM-sketch variant, the average and
maximum observed error of point queries and self-join queries against the
memory footprint of the sketch, sweeping the total error budget
``epsilon in [0.05, 0.25]`` at ``delta = 0.1``.

Table 3 reports the sustained update rate of the three variants at
``epsilon = 0.1``.

The runners in this module regenerate both: one row per (variant, epsilon)
for the figure, one row per variant for the table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

from ..analysis.metrics import (
    evaluate_point_queries,
    evaluate_self_join_queries,
    exponential_query_ranges,
)
from ..baselines.exact import ExactStreamSummary
from ..core.config import CounterType
from ..core.errors import ConfigurationError
from ..streams.stream import Stream
from .common import (
    DEFAULT_DELTA,
    DEFAULT_EPSILONS,
    PAPER_WINDOW_SECONDS,
    VARIANT_LABELS,
    build_sketch,
    load_dataset,
    max_arrivals_bound,
)

__all__ = [
    "CentralizedErrorRow",
    "UpdateRateRow",
    "run_centralized_error_experiment",
    "run_update_rate_experiment",
    "format_centralized_rows",
    "format_update_rate_rows",
]


@dataclass
class CentralizedErrorRow:
    """One point of Figure 4: a (dataset, variant, epsilon, query type) cell."""

    dataset: str
    variant: str
    query_type: str
    epsilon: float
    memory_bytes: int
    average_error: float
    maximum_error: float
    queries: int

    @property
    def memory_megabytes(self) -> float:
        """Memory on the figure's X axis, in megabytes."""
        return self.memory_bytes / (1024.0 * 1024.0)


@dataclass
class UpdateRateRow:
    """One cell of Table 3: sustained update rate of a variant on a data set."""

    dataset: str
    variant: str
    epsilon: float
    records: int
    elapsed_seconds: float

    @property
    def updates_per_second(self) -> float:
        """Updates per second (the unit of Table 3)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.records / self.elapsed_seconds


def _evaluate_variant(
    dataset: str,
    stream: Stream,
    exact: ExactStreamSummary,
    counter_type: CounterType,
    epsilon: float,
    query_type: str,
    window: float,
    max_keys_per_range: int | None,
    seed: int,
) -> CentralizedErrorRow:
    """Build, feed and evaluate one sketch variant at one epsilon."""
    sketch = build_sketch(
        counter_type=counter_type,
        epsilon=epsilon,
        delta=DEFAULT_DELTA,
        window=window,
        max_arrivals=max_arrivals_bound(stream),
        query_type=query_type,
        seed=seed,
    )
    for record in stream:
        sketch.add(record.key, record.timestamp, record.value)
    now = stream.end_time()
    ranges = exponential_query_ranges(window)
    if query_type == "point":
        summary = evaluate_point_queries(
            sketch, exact, ranges, now=now, max_keys_per_range=max_keys_per_range
        )
    else:
        summary = evaluate_self_join_queries(sketch, exact, ranges, now=now)
    return CentralizedErrorRow(
        dataset=dataset,
        variant=VARIANT_LABELS[counter_type],
        query_type=query_type,
        epsilon=epsilon,
        # The paper's memory axis is the 32-bit synopsis model, independent
        # of how the counter grid is stored locally.
        memory_bytes=sketch.synopsis_bytes(),
        average_error=summary.average,
        maximum_error=summary.maximum,
        queries=summary.count,
    )


def run_centralized_error_experiment(
    dataset: str = "wc98",
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    variants: Sequence[CounterType] | None = None,
    query_types: Sequence[str] = ("point", "self-join"),
    num_records: int | None = None,
    window: float = PAPER_WINDOW_SECONDS,
    max_keys_per_range: int | None = 200,
    seed: int = 0,
) -> list[CentralizedErrorRow]:
    """Regenerate Figure 4 for one data set.

    Randomized-wave sketches are skipped for self-join queries, matching the
    paper ("the ECM-RW structure does not allow probabilistic guarantees for
    self-join queries").
    """
    if variants is None:
        variants = (
            CounterType.EXPONENTIAL_HISTOGRAM,
            CounterType.DETERMINISTIC_WAVE,
            CounterType.RANDOMIZED_WAVE,
        )
    stream = load_dataset(dataset, num_records=num_records)
    exact = ExactStreamSummary.from_stream(stream, window=window)
    rows: list[CentralizedErrorRow] = []
    for query_type in query_types:
        if query_type not in ("point", "self-join"):
            raise ConfigurationError("unknown query type %r" % (query_type,))
        for counter_type in variants:
            if query_type == "self-join" and counter_type is CounterType.RANDOMIZED_WAVE:
                continue
            for epsilon in epsilons:
                rows.append(
                    _evaluate_variant(
                        dataset=dataset,
                        stream=stream,
                        exact=exact,
                        counter_type=counter_type,
                        epsilon=epsilon,
                        query_type=query_type,
                        window=window,
                        max_keys_per_range=max_keys_per_range,
                        seed=seed,
                    )
                )
    return rows


def run_update_rate_experiment(
    dataset: str = "wc98",
    epsilon: float = 0.1,
    variants: Sequence[CounterType] | None = None,
    num_records: int | None = None,
    window: float = PAPER_WINDOW_SECONDS,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[UpdateRateRow]:
    """Regenerate Table 3 (update rates per variant) for one data set.

    Args:
        batch_size: When given, ingest through the batched fast path
            (``ECMSketch.add_many``) in chunks of this many records instead of
            per-record ``add`` calls; the sustained rates then reflect the
            batched hot path.
    """
    if variants is None:
        variants = (
            CounterType.EXPONENTIAL_HISTOGRAM,
            CounterType.DETERMINISTIC_WAVE,
            CounterType.RANDOMIZED_WAVE,
        )
    stream = load_dataset(dataset, num_records=num_records)
    rows: list[UpdateRateRow] = []
    for counter_type in variants:
        sketch = build_sketch(
            counter_type=counter_type,
            epsilon=epsilon,
            delta=DEFAULT_DELTA,
            window=window,
            max_arrivals=max_arrivals_bound(stream),
            query_type="point",
            seed=seed,
        )
        if batch_size is None:
            start = time.perf_counter()
            for record in stream:
                sketch.add(record.key, record.timestamp, record.value)
            elapsed = time.perf_counter() - start
        else:
            # The pivot is part of the timed region: the scalar loop pays
            # per-record attribute access inside the clock, so the batched
            # number must pay its equivalent too.
            start = time.perf_counter()
            keys, timestamps, values = stream.columns()
            for begin in range(0, len(keys), batch_size):
                stop = begin + batch_size
                sketch.add_many(keys[begin:stop], timestamps[begin:stop], values[begin:stop])
            elapsed = time.perf_counter() - start
        rows.append(
            UpdateRateRow(
                dataset=dataset,
                variant=VARIANT_LABELS[counter_type],
                epsilon=epsilon,
                records=len(stream),
                elapsed_seconds=elapsed,
            )
        )
    return rows


# ------------------------------------------------------------------ reporting
def format_centralized_rows(rows: Sequence[CentralizedErrorRow]) -> str:
    """Render Figure 4 rows as an aligned text table."""
    header = "%-6s %-8s %-10s %6s %12s %10s %10s %8s" % (
        "data", "variant", "query", "eps", "memory(MB)", "avg err", "max err", "queries",
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-6s %-8s %-10s %6.2f %12.3f %10.4f %10.4f %8d"
            % (
                row.dataset,
                row.variant,
                row.query_type,
                row.epsilon,
                row.memory_megabytes,
                row.average_error,
                row.maximum_error,
                row.queries,
            )
        )
    return "\n".join(lines)


def format_update_rate_rows(rows: Sequence[UpdateRateRow]) -> str:
    """Render Table 3 rows as an aligned text table."""
    header = "%-6s %-8s %6s %10s %14s" % ("data", "variant", "eps", "records", "updates/sec")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-6s %-8s %6.2f %10d %14.0f"
            % (row.dataset, row.variant, row.epsilon, row.records, row.updates_per_second)
        )
    return "\n".join(lines)
