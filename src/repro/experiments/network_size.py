"""Network-size experiment: Figure 6 (paper Section 7.3).

The paper simulates artificial networks of 1, 2, 4, ..., 256 servers, placing
them at the leaves of a balanced binary tree and dividing the requests
uniformly across them.  For ``epsilon = delta = 0.1`` it reports, per network
size, (a) the average observed error of point and self-join queries at the
root and (b) the transfer volume of the aggregation round, for ECM-EH and
ECM-RW sketches.  The expected shape: ECM-EH error grows slowly with the
number of aggregation levels while ECM-RW error is flat (lossless merge), and
ECM-RW transfer volume is roughly an order of magnitude larger.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..analysis.metrics import (
    evaluate_point_queries,
    evaluate_self_join_queries,
    exponential_query_ranges,
)
from ..baselines.exact import ExactStreamSummary
from ..core.config import CounterType, ECMConfig
from ..distributed.aggregation import DistributedDeployment
from ..windows.base import WindowModel
from .common import (
    DEFAULT_DELTA,
    PAPER_WINDOW_SECONDS,
    VARIANT_LABELS,
    load_dataset,
    max_arrivals_bound,
)

__all__ = ["NetworkSizeRow", "run_network_size_experiment", "format_network_size_rows"]

#: Paper's artificial network sizes.
DEFAULT_NETWORK_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class NetworkSizeRow:
    """One point of Figure 6: error and transfer volume at one network size."""

    dataset: str
    variant: str
    num_nodes: int
    epsilon: float
    point_average_error: float
    self_join_average_error: float | None
    transfer_bytes: int
    aggregation_levels: int

    @property
    def transfer_megabytes(self) -> float:
        """Transfer volume in megabytes."""
        return self.transfer_bytes / (1024.0 * 1024.0)


def run_network_size_experiment(
    dataset: str = "wc98",
    network_sizes: Sequence[int] = DEFAULT_NETWORK_SIZES,
    variants: Sequence[CounterType] | None = None,
    epsilon: float = 0.1,
    num_records: int | None = None,
    window: float = PAPER_WINDOW_SECONDS,
    max_keys_per_range: int | None = 200,
    seed: int = 0,
    workers: int | None = None,
    shards: int | None = None,
) -> list[NetworkSizeRow]:
    """Regenerate Figure 6 for one data set.

    With ``workers``/``shards`` every simulated network is ingested through
    the sharded parallel runner (identical results to the serial loop), which
    is what makes the larger artificial networks tractable.
    """
    if variants is None:
        variants = (CounterType.EXPONENTIAL_HISTOGRAM, CounterType.RANDOMIZED_WAVE)
    stream = load_dataset(dataset, num_records=num_records)
    exact = ExactStreamSummary.from_stream(stream, window=window)
    now = stream.end_time()
    ranges = exponential_query_ranges(window)
    bound = max_arrivals_bound(stream)
    rows: list[NetworkSizeRow] = []
    for counter_type in variants:
        config = ECMConfig.for_point_queries(
            epsilon=epsilon,
            delta=DEFAULT_DELTA,
            window=window,
            model=WindowModel.TIME_BASED,
            counter_type=counter_type,
            max_arrivals=bound,
            seed=seed,
        )
        for size in network_sizes:
            uniform = stream.reassign_round_robin(size)
            deployment = DistributedDeployment(num_nodes=size, config=config)
            deployment.ingest(uniform, workers=workers, shards=shards)
            root = deployment.aggregate()
            report = deployment.last_report
            point_summary = evaluate_point_queries(
                root, exact, ranges, now=now, max_keys_per_range=max_keys_per_range
            )
            if counter_type is CounterType.RANDOMIZED_WAVE:
                self_join_error: float | None = None
            else:
                self_join_error = evaluate_self_join_queries(root, exact, ranges, now=now).average
            rows.append(
                NetworkSizeRow(
                    dataset=dataset,
                    variant=VARIANT_LABELS[counter_type],
                    num_nodes=size,
                    epsilon=epsilon,
                    point_average_error=point_summary.average,
                    self_join_average_error=self_join_error,
                    transfer_bytes=report.transfer_bytes if report else 0,
                    aggregation_levels=deployment.aggregation_levels(),
                )
            )
    return rows


def format_network_size_rows(rows: Sequence[NetworkSizeRow]) -> str:
    """Render Figure 6 rows as an aligned text table."""
    header = "%-6s %-8s %6s %6s %10s %12s %14s %7s" % (
        "data", "variant", "nodes", "eps", "point err", "selfjoin err", "transfer(MB)", "levels",
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        self_join = "%12.4f" % row.self_join_average_error if row.self_join_average_error is not None else "%12s" % "n/a"
        lines.append(
            "%-6s %-8s %6d %6.2f %10.4f %s %14.3f %7d"
            % (
                row.dataset,
                row.variant,
                row.num_nodes,
                row.epsilon,
                row.point_average_error,
                self_join,
                row.transfer_megabytes,
                row.aggregation_levels,
            )
        )
    return "\n".join(lines)
