"""Distributed-setup experiments: Figure 5 and Table 4 (paper Section 7.3).

The servers of each data set (33 world-cup mirrors, 535 SNMP access points)
are placed at the leaves of a balanced binary tree; local ECM-sketches are
aggregated bottom-up, and the root sketch answers point and self-join queries
for the order-preserving union stream.

* Figure 5 plots the observed error of the root sketch against the total
  transfer volume of the aggregation, sweeping epsilon, for ECM-EH and ECM-RW
  (ECM-DW is skipped as in the paper, since it offers no advantage over
  ECM-EH in this setting).
* Table 4 compares the observed error of a centralized sketch against the
  distributed (aggregated) sketch at epsilon in {0.1, 0.2}, reporting the
  degradation ratio caused by iterative aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..analysis.metrics import (
    evaluate_point_queries,
    evaluate_self_join_queries,
    exponential_query_ranges,
)
from ..baselines.exact import ExactStreamSummary
from ..core.config import CounterType, ECMConfig
from ..core.ecm_sketch import ECMSketch
from ..distributed.aggregation import DistributedDeployment
from ..streams.stream import Stream
from ..windows.base import WindowModel
from .common import (
    DEFAULT_DELTA,
    DEFAULT_EPSILONS,
    PAPER_WINDOW_SECONDS,
    VARIANT_LABELS,
    dataset_specs,
    load_dataset,
    max_arrivals_bound,
)

__all__ = [
    "DistributedErrorRow",
    "CentralizedVsDistributedRow",
    "run_distributed_error_experiment",
    "run_centralized_vs_distributed_experiment",
    "format_distributed_rows",
    "format_centralized_vs_distributed_rows",
]


@dataclass
class DistributedErrorRow:
    """One point of Figure 5: observed error vs transfer volume."""

    dataset: str
    variant: str
    query_type: str
    epsilon: float
    num_nodes: int
    transfer_bytes: int
    average_error: float
    maximum_error: float

    @property
    def transfer_megabytes(self) -> float:
        """Transfer volume on the figure's X axis, in megabytes."""
        return self.transfer_bytes / (1024.0 * 1024.0)


@dataclass
class CentralizedVsDistributedRow:
    """One row of Table 4: centralized vs distributed observed error."""

    dataset: str
    variant: str
    query_type: str
    epsilon: float
    centralized_error: float
    distributed_error: float

    @property
    def ratio(self) -> float:
        """Distributed / centralized error ratio (Table 4's "Ratio" column)."""
        if self.centralized_error == 0:
            return float("inf") if self.distributed_error > 0 else 1.0
        return self.distributed_error / self.centralized_error


def _build_config(
    counter_type: CounterType,
    epsilon: float,
    query_type: str,
    window: float,
    max_arrivals: int,
    seed: int,
) -> ECMConfig:
    if query_type == "point" or counter_type is CounterType.RANDOMIZED_WAVE:
        return ECMConfig.for_point_queries(
            epsilon=epsilon,
            delta=DEFAULT_DELTA,
            window=window,
            model=WindowModel.TIME_BASED,
            counter_type=counter_type,
            max_arrivals=max_arrivals,
            seed=seed,
        )
    return ECMConfig.for_inner_product_queries(
        epsilon=epsilon,
        delta=DEFAULT_DELTA,
        window=window,
        model=WindowModel.TIME_BASED,
        counter_type=counter_type,
        max_arrivals=max_arrivals,
        seed=seed,
    )


def _run_deployment(
    stream: Stream,
    num_nodes: int,
    config: ECMConfig,
    workers: int | None = None,
    shards: int | None = None,
) -> DistributedDeployment:
    deployment = DistributedDeployment(num_nodes=num_nodes, config=config)
    # ingest() itself picks the per-record loop when workers/shards are both
    # None, and the sharded runner (identical site sketches) otherwise.
    deployment.ingest(stream, workers=workers, shards=shards)
    return deployment


def run_distributed_error_experiment(
    dataset: str = "wc98",
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    variants: Sequence[CounterType] | None = None,
    query_types: Sequence[str] = ("point", "self-join"),
    num_records: int | None = None,
    num_nodes: int | None = None,
    window: float = PAPER_WINDOW_SECONDS,
    max_keys_per_range: int | None = 200,
    seed: int = 0,
    workers: int | None = None,
    shards: int | None = None,
) -> list[DistributedErrorRow]:
    """Regenerate Figure 5 for one data set.

    ECM-RW self-join rows are skipped (no guarantee, as in the paper);
    ECM-DW is excluded by default for the same reason the paper excludes it.
    With ``workers``/``shards`` the sites are simulated through the sharded
    parallel runner; the measured errors and transfer volumes are identical
    to the serial simulation.
    """
    if variants is None:
        variants = (CounterType.EXPONENTIAL_HISTOGRAM, CounterType.RANDOMIZED_WAVE)
    spec = dataset_specs()[dataset]
    nodes = num_nodes if num_nodes is not None else spec.num_nodes
    stream = load_dataset(dataset, num_records=num_records)
    exact = ExactStreamSummary.from_stream(stream, window=window)
    now = stream.end_time()
    ranges = exponential_query_ranges(window)
    bound = max_arrivals_bound(stream)
    rows: list[DistributedErrorRow] = []
    for query_type in query_types:
        for counter_type in variants:
            if query_type == "self-join" and counter_type is CounterType.RANDOMIZED_WAVE:
                continue
            for epsilon in epsilons:
                config = _build_config(counter_type, epsilon, query_type, window, bound, seed)
                deployment = _run_deployment(stream, nodes, config, workers=workers, shards=shards)
                root = deployment.aggregate()
                report = deployment.last_report
                if query_type == "point":
                    summary = evaluate_point_queries(
                        root, exact, ranges, now=now, max_keys_per_range=max_keys_per_range
                    )
                else:
                    summary = evaluate_self_join_queries(root, exact, ranges, now=now)
                rows.append(
                    DistributedErrorRow(
                        dataset=dataset,
                        variant=VARIANT_LABELS[counter_type],
                        query_type=query_type,
                        epsilon=epsilon,
                        num_nodes=nodes,
                        transfer_bytes=report.transfer_bytes if report else 0,
                        average_error=summary.average,
                        maximum_error=summary.maximum,
                    )
                )
    return rows


def run_centralized_vs_distributed_experiment(
    dataset: str = "wc98",
    epsilons: Sequence[float] = (0.1, 0.2),
    variants: Sequence[CounterType] | None = None,
    query_types: Sequence[str] = ("point", "self-join"),
    num_records: int | None = None,
    num_nodes: int | None = None,
    window: float = PAPER_WINDOW_SECONDS,
    max_keys_per_range: int | None = 200,
    seed: int = 0,
    workers: int | None = None,
    shards: int | None = None,
) -> list[CentralizedVsDistributedRow]:
    """Regenerate Table 4 for one data set."""
    if variants is None:
        variants = (CounterType.EXPONENTIAL_HISTOGRAM, CounterType.RANDOMIZED_WAVE)
    spec = dataset_specs()[dataset]
    nodes = num_nodes if num_nodes is not None else spec.num_nodes
    stream = load_dataset(dataset, num_records=num_records)
    exact = ExactStreamSummary.from_stream(stream, window=window)
    now = stream.end_time()
    ranges = exponential_query_ranges(window)
    bound = max_arrivals_bound(stream)
    rows: list[CentralizedVsDistributedRow] = []
    for query_type in query_types:
        for counter_type in variants:
            if query_type == "self-join" and counter_type is CounterType.RANDOMIZED_WAVE:
                continue
            for epsilon in epsilons:
                config = _build_config(counter_type, epsilon, query_type, window, bound, seed)

                centralized = ECMSketch(config, stream_tag=0)
                for record in stream:
                    centralized.add(record.key, record.timestamp, record.value)

                deployment = _run_deployment(stream, nodes, config, workers=workers, shards=shards)
                distributed = deployment.aggregate()

                if query_type == "point":
                    central_summary = evaluate_point_queries(
                        centralized, exact, ranges, now=now, max_keys_per_range=max_keys_per_range
                    )
                    dist_summary = evaluate_point_queries(
                        distributed, exact, ranges, now=now, max_keys_per_range=max_keys_per_range
                    )
                else:
                    central_summary = evaluate_self_join_queries(centralized, exact, ranges, now=now)
                    dist_summary = evaluate_self_join_queries(distributed, exact, ranges, now=now)
                rows.append(
                    CentralizedVsDistributedRow(
                        dataset=dataset,
                        variant=VARIANT_LABELS[counter_type],
                        query_type=query_type,
                        epsilon=epsilon,
                        centralized_error=central_summary.average,
                        distributed_error=dist_summary.average,
                    )
                )
    return rows


# ------------------------------------------------------------------ reporting
def format_distributed_rows(rows: Sequence[DistributedErrorRow]) -> str:
    """Render Figure 5 rows as an aligned text table."""
    header = "%-6s %-8s %-10s %6s %6s %14s %10s %10s" % (
        "data", "variant", "query", "eps", "nodes", "transfer(MB)", "avg err", "max err",
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-6s %-8s %-10s %6.2f %6d %14.3f %10.4f %10.4f"
            % (
                row.dataset,
                row.variant,
                row.query_type,
                row.epsilon,
                row.num_nodes,
                row.transfer_megabytes,
                row.average_error,
                row.maximum_error,
            )
        )
    return "\n".join(lines)


def format_centralized_vs_distributed_rows(rows: Sequence[CentralizedVsDistributedRow]) -> str:
    """Render Table 4 rows as an aligned text table."""
    header = "%-6s %-8s %-10s %6s %12s %12s %8s" % (
        "data", "variant", "query", "eps", "centralized", "distributed", "ratio",
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-6s %-8s %-10s %6.2f %12.4f %12.4f %8.3f"
            % (
                row.dataset,
                row.variant,
                row.query_type,
                row.epsilon,
                row.centralized_error,
                row.distributed_error,
                row.ratio,
            )
        )
    return "\n".join(lines)
