"""Shared plumbing of the experiment runners (Section 7 reproduction).

Every experiment in the paper uses the same ingredients: a data set (wc'98 or
snmp), a sliding window of one million seconds, exponentially increasing query
ranges, the three ECM-sketch variants (ECM-EH, ECM-DW, ECM-RW) and the
observed-error methodology of :mod:`repro.analysis.metrics`.  This module
centralises those ingredients so that the per-figure runners stay small and
the benchmarks stay thin wrappers.

Scale note: the real traces carry 10^8–10^9 records; the synthetic stand-ins
default to a few tens of thousands so every experiment runs in seconds on a
laptop.  All runners accept a ``num_records`` override for larger runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import CounterType, ECMConfig
from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError
from ..streams.generators import SnmpSyntheticTrace, WorldCupSyntheticTrace
from ..streams.stream import Stream
from ..windows.base import WindowModel

__all__ = [
    "PAPER_WINDOW_SECONDS",
    "DEFAULT_EPSILONS",
    "DEFAULT_DELTA",
    "VARIANT_LABELS",
    "DatasetSpec",
    "dataset_specs",
    "load_dataset",
    "build_sketch",
    "max_arrivals_bound",
]

#: The paper monitors a sliding window of one million seconds (~11.5 days).
PAPER_WINDOW_SECONDS = 1_000_000.0

#: Epsilon sweep of Figures 4 and 5.
DEFAULT_EPSILONS = (0.05, 0.10, 0.15, 0.20, 0.25)

#: Failure probability used throughout Section 7.
DEFAULT_DELTA = 0.1

#: Human-readable labels of the sketch variants, as used in the paper's plots.
VARIANT_LABELS: dict[CounterType, str] = {
    CounterType.EXPONENTIAL_HISTOGRAM: "ECM-EH",
    CounterType.DETERMINISTIC_WAVE: "ECM-DW",
    CounterType.RANDOMIZED_WAVE: "ECM-RW",
}


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic data set used by the experiments."""

    name: str
    num_nodes: int
    domain_size: int
    zipf_exponent: float
    default_records: int


def dataset_specs() -> dict[str, DatasetSpec]:
    """The two data sets of the paper, at reproduction scale."""
    return {
        "wc98": DatasetSpec(
            name="wc98", num_nodes=33, domain_size=2_000, zipf_exponent=1.1, default_records=30_000
        ),
        "snmp": DatasetSpec(
            name="snmp", num_nodes=535, domain_size=3_000, zipf_exponent=0.9, default_records=30_000
        ),
    }


def load_dataset(name: str, num_records: int | None = None, seed: int = 7) -> Stream:
    """Generate the named synthetic data set.

    Args:
        name: ``"wc98"`` or ``"snmp"``.
        num_records: Trace length; defaults to the spec's reproduction scale.
        seed: Generator seed (fixed by default so experiments are repeatable).
    """
    specs = dataset_specs()
    if name not in specs:
        raise ConfigurationError("unknown dataset %r (expected one of %s)" % (name, sorted(specs)))
    spec = specs[name]
    records = num_records if num_records is not None else spec.default_records
    if name == "wc98":
        return WorldCupSyntheticTrace(
            num_records=records,
            num_nodes=spec.num_nodes,
            domain_size=spec.domain_size,
            zipf_exponent=spec.zipf_exponent,
            duration=PAPER_WINDOW_SECONDS,
            seed=seed,
        ).generate()
    return SnmpSyntheticTrace(
        num_records=records,
        num_nodes=spec.num_nodes,
        domain_size=spec.domain_size,
        zipf_exponent=spec.zipf_exponent,
        duration=PAPER_WINDOW_SECONDS,
        seed=seed,
    ).generate()


def max_arrivals_bound(stream: Stream, safety_factor: float = 2.0) -> int:
    """A conservative ``u(N, S)`` bound for wave-based counters.

    The paper notes that only loose bounds are available in practice (they use
    "one event per millisecond"); we use the trace length times a safety
    factor, which is similarly conservative at reproduction scale.
    """
    return max(16, int(len(stream) * safety_factor))


def build_sketch(
    counter_type: CounterType,
    epsilon: float,
    delta: float,
    window: float,
    max_arrivals: int,
    query_type: str = "point",
    seed: int = 0,
    stream_tag: int = 0,
) -> ECMSketch:
    """Build one ECM-sketch variant sized for the requested query type.

    ``query_type`` is ``"point"`` or ``"self-join"``; it selects the
    memory-optimal epsilon split of Section 4.1, which is why the paper's
    Figure 4 shows different memory costs for the two query types at the same
    total epsilon.
    """
    if query_type == "point":
        config = ECMConfig.for_point_queries(
            epsilon=epsilon,
            delta=delta,
            window=window,
            model=WindowModel.TIME_BASED,
            counter_type=counter_type,
            max_arrivals=max_arrivals,
            seed=seed,
        )
    elif query_type in ("self-join", "inner-product"):
        config = ECMConfig.for_inner_product_queries(
            epsilon=epsilon,
            delta=delta,
            window=window,
            model=WindowModel.TIME_BASED,
            counter_type=counter_type,
            max_arrivals=max_arrivals,
            seed=seed,
        )
    else:
        raise ConfigurationError("query_type must be 'point' or 'self-join', got %r" % (query_type,))
    return ECMSketch(config, stream_tag=stream_tag)
