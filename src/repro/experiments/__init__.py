"""Experiment runners regenerating every table and figure of the paper's Section 7.

Mapping (see DESIGN.md for the full index):

* Table 2  — :func:`repro.experiments.complexity.run_complexity_experiment`
* Figure 4 — :func:`repro.experiments.centralized.run_centralized_error_experiment`
* Table 3  — :func:`repro.experiments.centralized.run_update_rate_experiment`
* Figure 5 — :func:`repro.experiments.distributed.run_distributed_error_experiment`
* Table 4  — :func:`repro.experiments.distributed.run_centralized_vs_distributed_experiment`
* Figure 6 — :func:`repro.experiments.network_size.run_network_size_experiment`
* Ablations — :mod:`repro.experiments.ablations`
* Frequent items (Section 6.1, beyond the paper's tables) —
  :func:`repro.experiments.frequent_items.run_frequent_items_experiment`
"""

from .ablations import (
    EpsilonSplitRow,
    MergeStrategyRow,
    format_epsilon_split_rows,
    format_merge_strategy_rows,
    run_epsilon_split_ablation,
    run_merge_strategy_ablation,
)
from .centralized import (
    CentralizedErrorRow,
    UpdateRateRow,
    format_centralized_rows,
    format_update_rate_rows,
    run_centralized_error_experiment,
    run_update_rate_experiment,
)
from .common import (
    DEFAULT_DELTA,
    DEFAULT_EPSILONS,
    PAPER_WINDOW_SECONDS,
    VARIANT_LABELS,
    DatasetSpec,
    build_sketch,
    dataset_specs,
    load_dataset,
    max_arrivals_bound,
)
from .complexity import ComplexityRow, format_complexity_rows, run_complexity_experiment
from .distributed import (
    CentralizedVsDistributedRow,
    DistributedErrorRow,
    format_centralized_vs_distributed_rows,
    format_distributed_rows,
    run_centralized_vs_distributed_experiment,
    run_distributed_error_experiment,
)
from .frequent_items import (
    FrequentItemsRow,
    format_frequent_items_rows,
    run_frequent_items_experiment,
)
from .network_size import (
    DEFAULT_NETWORK_SIZES,
    NetworkSizeRow,
    format_network_size_rows,
    run_network_size_experiment,
)

__all__ = [
    "PAPER_WINDOW_SECONDS",
    "DEFAULT_EPSILONS",
    "DEFAULT_DELTA",
    "VARIANT_LABELS",
    "DatasetSpec",
    "dataset_specs",
    "load_dataset",
    "build_sketch",
    "max_arrivals_bound",
    "CentralizedErrorRow",
    "UpdateRateRow",
    "run_centralized_error_experiment",
    "run_update_rate_experiment",
    "format_centralized_rows",
    "format_update_rate_rows",
    "DistributedErrorRow",
    "CentralizedVsDistributedRow",
    "run_distributed_error_experiment",
    "run_centralized_vs_distributed_experiment",
    "format_distributed_rows",
    "format_centralized_vs_distributed_rows",
    "NetworkSizeRow",
    "DEFAULT_NETWORK_SIZES",
    "run_network_size_experiment",
    "format_network_size_rows",
    "ComplexityRow",
    "run_complexity_experiment",
    "format_complexity_rows",
    "FrequentItemsRow",
    "run_frequent_items_experiment",
    "format_frequent_items_rows",
    "EpsilonSplitRow",
    "MergeStrategyRow",
    "run_epsilon_split_ablation",
    "run_merge_strategy_ablation",
    "format_epsilon_split_rows",
    "format_merge_strategy_rows",
]
