"""Continuous distributed queries via periodic sketch propagation.

The geometric method (:mod:`repro.distributed.geometric`) answers *threshold*
queries with event-driven communication.  Many deployments instead need the
coordinator to answer arbitrary sliding-window queries *at any time* — the
continuous-query setting that the paper's related work (Chan et al.) addresses
by scheduling the propagation of local synopses.  This module provides that
complementary mode: every site keeps its local ECM-sketch, and the coordinator
re-aggregates the sketches on a fixed period of stream time.  Between rounds
the coordinator answers queries from the most recent aggregate, so its answers
are stale by at most one period plus the usual sketch error.

The class tracks both sides of the trade-off — cumulative transfer volume and
observed staleness — so the period can be chosen quantitatively (see
``benchmarks/bench_ablation_propagation_period.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable

from ..core.config import ECMConfig
from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError, EmptyStructureError
from ..streams.stream import Stream, StreamRecord
from .aggregation import AggregationReport, hierarchical_aggregate
from .node import StreamNode
from .topology import AggregationTree

__all__ = ["PropagationStats", "PeriodicAggregationCoordinator"]


@dataclass
class PropagationStats:
    """Accounting of a periodic-propagation run."""

    arrivals: int = 0
    rounds: int = 0
    transfer_bytes: int = 0
    messages: int = 0
    round_clocks: list[float] = field(default_factory=list)

    def transfer_megabytes(self) -> float:
        """Cumulative transfer volume in megabytes."""
        return self.transfer_bytes / (1024.0 * 1024.0)


class PeriodicAggregationCoordinator:
    """Answer continuous sliding-window queries from periodically aggregated sketches.

    Args:
        num_nodes: Number of observation sites.
        config: Shared ECM-sketch configuration.
        period: Aggregation period, in stream-clock units.  Smaller periods
            mean fresher answers and more communication.
        branching: Fan-in of the aggregation tree.
        seed: Seed for the tree construction.

    Example:
        >>> from repro.core import ECMConfig
        >>> config = ECMConfig.for_point_queries(epsilon=0.2, delta=0.2, window=1000.0)
        >>> coordinator = PeriodicAggregationCoordinator(num_nodes=2, config=config, period=10.0)
        >>> coordinator.observe(0, "x", clock=1.0)
        >>> coordinator.observe(1, "x", clock=12.0)   # crosses t=10: triggers a round
        >>> coordinator.stats.rounds >= 1
        True
    """

    def __init__(
        self,
        num_nodes: int,
        config: ECMConfig,
        period: float,
        branching: int = 2,
        seed: int = 0,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive, got %r" % (num_nodes,))
        if period <= 0:
            raise ConfigurationError("period must be positive, got %r" % (period,))
        self.config = config
        self.period = float(period)
        self.nodes: list[StreamNode] = [StreamNode(node_id=i, config=config) for i in range(num_nodes)]
        self.tree = AggregationTree(num_leaves=num_nodes, branching=branching, seed=seed)
        self.stats = PropagationStats()
        self._root: ECMSketch | None = None
        self._last_round_clock: float | None = None
        self._next_round_clock: float | None = None

    # ---------------------------------------------------------------- updates
    @property
    def num_nodes(self) -> int:
        """Number of observation sites."""
        return len(self.nodes)

    def observe(self, node_id: int, key: Hashable, clock: float, value: int = 1) -> bool:
        """Route one arrival to its site; aggregate when the period elapses.

        Returns:
            True when this arrival triggered an aggregation round.
        """
        self.nodes[node_id % len(self.nodes)].observe(key, clock, value)
        self.stats.arrivals += 1
        if self._next_round_clock is None:
            self._next_round_clock = clock + self.period
            return False
        if clock >= self._next_round_clock:
            self.run_round(now=clock)
            return True
        return False

    def observe_record(self, record: StreamRecord) -> bool:
        """Process one stream record."""
        return self.observe(record.node, record.key, record.timestamp, record.value)

    def observe_stream(self, stream: Stream, batch_size: int | None = None) -> None:
        """Process a whole stream in order.

        Args:
            stream: The stream to route across the sites.
            batch_size: When given, feed the sites through the batched fast
                path: records between two aggregation rounds are grouped per
                site and ingested via
                :meth:`~repro.distributed.node.StreamNode.observe_batch`,
                with rounds still triggered at exactly the clocks the
                per-record path would trigger them.  Rounds, stats and
                query answers are identical to per-record processing.
        """
        self.observe_batch(list(stream), batch_size=batch_size)

    def observe_batch(
        self, records: list[StreamRecord], batch_size: int | None = None
    ) -> None:
        """Process one in-order run of records, preserving round semantics.

        This is the reusable core of :meth:`observe_stream` — and the ingest
        path of the live sketch service (:mod:`repro.service`), which feeds
        the coordinator micro-batches as they leave its queue.  Aggregation
        rounds fire at exactly the stream clocks where per-record
        :meth:`observe` calls would fire them, regardless of ``batch_size``.
        """
        if batch_size is None:
            for record in records:
                self.observe_record(record)
            return
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive, got %r" % (batch_size,))
        position = 0
        total = len(records)
        while position < total:
            next_round = self._next_round_clock
            if next_round is None:
                # First arrival: observe it, then establish the round schedule
                # — exactly the per-record path's bootstrap step.
                record = records[position]
                self.nodes[record.node % len(self.nodes)].observe_record(record)
                self.stats.arrivals += 1
                self._next_round_clock = record.timestamp + self.period
                position += 1
                continue
            # Extend the segment until the record that crosses the round
            # boundary (it is observed *before* the round runs) or the cap.
            scan = position
            boundary: int | None = None
            while scan < total and scan - position < batch_size:
                if records[scan].timestamp >= next_round:
                    boundary = scan
                    break
                scan += 1
            stop = boundary + 1 if boundary is not None else scan
            self._observe_segment(records[position:stop])
            if boundary is not None:
                self.run_round(now=records[boundary].timestamp)
            position = stop

    def _observe_segment(self, segment: list[StreamRecord]) -> None:
        """Feed one round-free run of records to its sites, batched per site."""
        per_node: dict = {}
        for record in segment:
            per_node.setdefault(record.node % len(self.nodes), []).append(record)
        for node_id, node_records in per_node.items():
            self.nodes[node_id].observe_batch(node_records)
        self.stats.arrivals += len(segment)

    # ----------------------------------------------------------------- rounds
    def run_round(self, now: float) -> ECMSketch:
        """Aggregate the current local sketches into a fresh root sketch.

        Before shipping, every site sweeps its whole counter grid with
        :meth:`~repro.core.ecm_sketch.ECMSketch.expire` (one vectorized pass
        on the columnar backend).  Counters only expire lazily on their own
        update path, so a site whose keys went quiet would otherwise ship
        buckets that left the window long ago — dead weight in both transfer
        volume and merge work.  Dropping them cannot change any answer the
        coordinator serves: its queries end at the round clock ``now``, and
        the swept buckets lie entirely outside ``(now - N, now]``.
        """
        for node in self.nodes:
            node.sketch.expire(now)
        report = AggregationReport()
        root = hierarchical_aggregate(
            [node.sketch for node in self.nodes], tree=self.tree, report=report
        )
        self._root = root
        self._last_round_clock = now
        self._next_round_clock = now + self.period
        self.stats.rounds += 1
        self.stats.transfer_bytes += report.transfer_bytes
        self.stats.messages += report.messages
        self.stats.round_clocks.append(now)
        return root

    # ---------------------------------------------------------------- queries
    @property
    def last_round_clock(self) -> float | None:
        """Stream clock of the most recent aggregation round."""
        return self._last_round_clock

    def staleness(self, now: float) -> float:
        """How far the coordinator's view lags the stream, in clock units."""
        if self._last_round_clock is None:
            raise EmptyStructureError("no aggregation round has completed yet")
        return max(0.0, now - self._last_round_clock)

    def root_sketch(self) -> ECMSketch:
        """The most recent aggregated sketch."""
        if self._root is None:
            raise EmptyStructureError("no aggregation round has completed yet")
        return self._root

    def query_frequency(
        self, key: Hashable, range_length: float | None = None
    ) -> float:
        """Sliding-window frequency of ``key`` as of the last aggregation round."""
        root = self.root_sketch()
        return root.point_query(key, range_length, now=self._last_round_clock)

    def query_self_join(self, range_length: float | None = None) -> float:
        """Sliding-window self-join size as of the last aggregation round."""
        root = self.root_sketch()
        return root.self_join(range_length, now=self._last_round_clock)

    def __repr__(self) -> str:
        return "PeriodicAggregationCoordinator(nodes=%d, period=%g, rounds=%d)" % (
            len(self.nodes),
            self.period,
            self.stats.rounds,
        )
