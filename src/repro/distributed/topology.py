"""Aggregation topologies for distributed deployments.

The paper's distributed experiments organise the observation sites as the
leaves of a *balanced binary tree* of height ``ceil(log2(n))``; internal tree
positions are occupied by (randomly chosen) sites responsible for merging the
sketches of their children, and the root ends up with the ECM-sketch of the
order-preserving union of all streams after ``ceil(log2(n)) - 1`` aggregation
steps.  This module models that topology explicitly so that experiments can
account transfer volume edge by edge and reason about the number of
aggregation levels (which drives the error inflation of Theorem 4).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core.errors import ConfigurationError

__all__ = ["TreeVertex", "AggregationTree"]


@dataclass
class TreeVertex:
    """A vertex of the aggregation tree.

    Attributes:
        vertex_id: Identifier unique within the tree.
        level: 0 for leaves, increasing towards the root.
        node_id: Identifier of the physical site occupying the vertex (leaves
            carry their own site; internal vertices are staffed by one of the
            sites below them).
        children: Identifiers of the child vertices (empty for leaves).
        parent: Identifier of the parent vertex (``None`` for the root).
    """

    vertex_id: int
    level: int
    node_id: int
    children: list[int] = field(default_factory=list)
    parent: int | None = None

    @property
    def is_leaf(self) -> bool:
        """True when the vertex has no children."""
        return not self.children


class AggregationTree:
    """A balanced ``branching``-ary aggregation tree over ``n`` leaf sites.

    Args:
        num_leaves: Number of observation sites.
        branching: Fan-in of internal vertices (2 in the paper).
        seed: Seed used to choose which site staffs each internal vertex.
    """

    def __init__(self, num_leaves: int, branching: int = 2, seed: int = 0) -> None:
        if num_leaves <= 0:
            raise ConfigurationError("num_leaves must be positive, got %r" % (num_leaves,))
        if branching < 2:
            raise ConfigurationError("branching must be at least 2, got %r" % (branching,))
        self.num_leaves = num_leaves
        self.branching = branching
        self.seed = seed
        self.vertices: dict[int, TreeVertex] = {}
        self._build()

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        rng = random.Random(self.seed)
        next_id = 0
        current_level: list[int] = []
        for leaf_index in range(self.num_leaves):
            vertex = TreeVertex(vertex_id=next_id, level=0, node_id=leaf_index)
            self.vertices[next_id] = vertex
            current_level.append(next_id)
            next_id += 1
        level = 0
        while len(current_level) > 1:
            level += 1
            next_level: list[int] = []
            for start in range(0, len(current_level), self.branching):
                group = current_level[start : start + self.branching]
                # The internal vertex is staffed by one of the sites below it.
                staff = rng.choice([self.vertices[v].node_id for v in group])
                vertex = TreeVertex(vertex_id=next_id, level=level, node_id=staff, children=list(group))
                self.vertices[next_id] = vertex
                for child in group:
                    self.vertices[child].parent = next_id
                next_level.append(next_id)
                next_id += 1
            current_level = next_level
        self.root_id = current_level[0]

    # -------------------------------------------------------------- accessors
    @property
    def root(self) -> TreeVertex:
        """The root vertex."""
        return self.vertices[self.root_id]

    def leaves(self) -> list[TreeVertex]:
        """All leaf vertices, ordered by site identifier."""
        result = [v for v in self.vertices.values() if v.is_leaf]
        result.sort(key=lambda v: v.node_id)
        return result

    def internal_vertices(self) -> list[TreeVertex]:
        """All internal vertices ordered bottom-up (children before parents)."""
        result = [v for v in self.vertices.values() if not v.is_leaf]
        result.sort(key=lambda v: v.level)
        return result

    def height(self) -> int:
        """Number of aggregation levels (0 for a single-site deployment)."""
        return self.root.level

    def aggregation_steps(self) -> int:
        """Number of merge rounds required to reach the root."""
        return max(0, self.height())

    def expected_height(self) -> int:
        """The paper's ``ceil(log2(n))`` formula (useful for cross-checking)."""
        if self.num_leaves == 1:
            return 0
        return int(math.ceil(math.log(self.num_leaves, self.branching)))

    def edges(self) -> list[tuple]:
        """All (child_vertex_id, parent_vertex_id) edges."""
        return [
            (vertex.vertex_id, vertex.parent)
            for vertex in self.vertices.values()
            if vertex.parent is not None
        ]

    def children_of(self, vertex_id: int) -> list[TreeVertex]:
        """The child vertices of a vertex."""
        return [self.vertices[c] for c in self.vertices[vertex_id].children]

    def __repr__(self) -> str:
        return "AggregationTree(leaves=%d, branching=%d, height=%d)" % (
            self.num_leaves,
            self.branching,
            self.height(),
        )
