"""Distributed deployments: sites, aggregation trees and continuous monitoring."""

from .aggregation import AggregationReport, DistributedDeployment, hierarchical_aggregate
from .continuous import PeriodicAggregationCoordinator, PropagationStats
from .geometric import (
    GeometricMonitor,
    L2NormSquaredFunction,
    MonitoringStats,
    SelfJoinFunction,
    ThresholdFunction,
)
from .node import StreamNode
from .runner import RunnerReport, ShardedIngestRunner, ShardPlan, run_sharded_ingest
from .topology import AggregationTree, TreeVertex

__all__ = [
    "StreamNode",
    "AggregationTree",
    "TreeVertex",
    "AggregationReport",
    "hierarchical_aggregate",
    "DistributedDeployment",
    "ShardPlan",
    "RunnerReport",
    "ShardedIngestRunner",
    "run_sharded_ingest",
    "PeriodicAggregationCoordinator",
    "PropagationStats",
    "GeometricMonitor",
    "ThresholdFunction",
    "L2NormSquaredFunction",
    "SelfJoinFunction",
    "MonitoringStats",
]
