"""Hierarchical aggregation of ECM-sketches with network-cost accounting.

This module drives the paper's distributed experiments: every leaf site builds
a local ECM-sketch, sketches flow up a balanced aggregation tree, and each
internal vertex merges its children's sketches with the order-preserving
aggregation of Section 5.  The result at the root summarises the union stream
``S_1 (+) ... (+) S_n``.  Every sketch shipped over an edge is charged its
serialised size, which is how we reproduce the transfer-volume axes of
Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Sequence

from ..core.config import ECMConfig
from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError
from ..streams.stream import Stream
from ..windows.merge import epsilon_for_levels, multi_level_error
from .node import StreamNode
from .topology import AggregationTree

__all__ = ["AggregationReport", "hierarchical_aggregate", "DistributedDeployment"]


@dataclass
class AggregationReport:
    """Accounting of one full aggregation round.

    Attributes:
        transfer_bytes: Total bytes shipped over tree edges.
        messages: Number of sketches shipped (one per non-root vertex).
        levels: Height of the aggregation tree.
        per_level_bytes: Bytes shipped per tree level (keyed by the level of
            the *sending* vertex).
    """

    transfer_bytes: int = 0
    messages: int = 0
    levels: int = 0
    per_level_bytes: dict[int, int] = field(default_factory=dict)

    def record_shipment(self, level: int, size: int) -> None:
        """Charge one sketch shipment originating at ``level``."""
        self.transfer_bytes += size
        self.messages += 1
        self.per_level_bytes[level] = self.per_level_bytes.get(level, 0) + size

    def transfer_megabytes(self) -> float:
        """Transfer volume in megabytes (the unit of the paper's figures)."""
        return self.transfer_bytes / (1024.0 * 1024.0)


def hierarchical_aggregate(
    sketches: Sequence[ECMSketch],
    tree: AggregationTree | None = None,
    epsilon_prime: float | None = None,
    report: AggregationReport | None = None,
) -> ECMSketch:
    """Aggregate local sketches up a tree, charging per-edge transfer volume.

    Args:
        sketches: Local sketches, one per leaf site, ordered by site id.
        tree: The aggregation topology; defaults to a balanced binary tree
            over ``len(sketches)`` leaves.
        epsilon_prime: Window-error parameter used at every merge step;
            defaults to the inputs' own window error.
        report: Optional accounting object; a fresh one is created (and
            attached to the returned sketch as ``aggregation_report``) when
            omitted.

    Returns:
        The root ECM-sketch summarising the order-preserving union stream.
        The :class:`AggregationReport` is available as its
        ``aggregation_report`` attribute.
    """
    if not sketches:
        raise ConfigurationError("cannot aggregate an empty list of sketches")
    if tree is None:
        tree = AggregationTree(num_leaves=len(sketches))
    if tree.num_leaves != len(sketches):
        raise ConfigurationError(
            "tree has %d leaves but %d sketches were provided"
            % (tree.num_leaves, len(sketches))
        )
    if report is None:
        report = AggregationReport()
    report.levels = tree.height()

    # Sketch currently held at each tree vertex.
    held: dict[int, ECMSketch] = {}
    for leaf in tree.leaves():
        held[leaf.vertex_id] = sketches[leaf.node_id]

    if len(sketches) == 1:
        root_sketch = sketches[0]
        setattr(root_sketch, "aggregation_report", report)
        return root_sketch

    for vertex in tree.internal_vertices():
        children = tree.children_of(vertex.vertex_id)
        child_sketches: list[ECMSketch] = []
        for child in children:
            sketch = held.pop(child.vertex_id)
            # Every child ships its sketch to the vertex that merges it.
            report.record_shipment(child.level, sketch.serialized_bytes())
            child_sketches.append(sketch)
        # merge_many is the vectorized aggregation; its state is byte-identical
        # to ECMSketch.aggregate (the replay-based reference).
        held[vertex.vertex_id] = ECMSketch.merge_many(child_sketches, epsilon_prime=epsilon_prime)

    root_sketch = held[tree.root_id]
    setattr(root_sketch, "aggregation_report", report)
    return root_sketch


class DistributedDeployment:
    """A simulated distributed deployment: sites, local streams and aggregation.

    The deployment partitions a logical stream across its observation sites
    (using the record's ``node`` attribute), lets every site build a local
    ECM-sketch, and aggregates the sketches up a balanced binary tree — the
    exact setup of the paper's Section 7.3.

    Args:
        num_nodes: Number of observation sites.
        config: Shared ECM-sketch configuration.
        branching: Fan-in of the aggregation tree.
        seed: Seed for the (randomised) staffing of internal tree vertices.

    Example:
        >>> from repro.core import ECMConfig
        >>> from repro.streams import WorldCupSyntheticTrace
        >>> trace = WorldCupSyntheticTrace(num_records=2000, num_nodes=4).generate()
        >>> config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        >>> deployment = DistributedDeployment(num_nodes=4, config=config)
        >>> deployment.ingest(trace)
        >>> root = deployment.aggregate()
        >>> root.total_arrivals() == len(trace)
        True
    """

    def __init__(
        self,
        num_nodes: int,
        config: ECMConfig,
        branching: int = 2,
        seed: int = 0,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive, got %r" % (num_nodes,))
        self.config = config
        self.nodes: list[StreamNode] = [StreamNode(node_id=i, config=config) for i in range(num_nodes)]
        self.tree = AggregationTree(num_leaves=num_nodes, branching=branching, seed=seed)
        self.last_report: AggregationReport | None = None
        self.last_ingest_report = None  # RunnerReport of the last sharded ingest

    # ---------------------------------------------------------------- update
    @property
    def num_nodes(self) -> int:
        """Number of observation sites."""
        return len(self.nodes)

    def ingest(
        self,
        stream: Stream,
        workers: int | None = None,
        shards: int | None = None,
        batch_size: int | None = None,
    ) -> None:
        """Route every record of the stream to the site that observed it.

        Records whose ``node`` exceeds the deployment size are assigned by
        modulo, which lets experiments reuse a trace generated for a different
        node count (Figure 6's artificial networks).

        Args:
            stream: The logical stream to partition across the sites.
            workers: When given (or when ``shards``/``batch_size`` is given),
                ingest through the sharded runner
                (:mod:`repro.distributed.runner`): sites are grouped into
                shards, replayed through the batched fast path, and — with
                ``workers >= 2`` — simulated in parallel worker processes.
                The resulting site sketches are identical to the default
                per-record loop.
            shards: Number of shard work units (defaults to ``workers``).
            batch_size: ``add_many`` chunk size for the sharded path.
        """
        if workers is None and shards is None and batch_size is None:
            for record in stream:
                node = self.nodes[record.node % len(self.nodes)]
                node.observe_record(record)
            return
        from .runner import DEFAULT_BATCH_SIZE, ShardedIngestRunner

        runner = ShardedIngestRunner(
            self.config,
            workers=workers,
            shards=shards,
            batch_size=DEFAULT_BATCH_SIZE if batch_size is None else batch_size,
        )
        runner.ingest(stream, num_nodes=len(self.nodes), nodes=self.nodes)
        self.last_ingest_report = runner.last_report

    def observe(self, node_id: int, key: Hashable, clock: float, value: int = 1) -> None:
        """Feed a single arrival to one site."""
        self.nodes[node_id % len(self.nodes)].observe(key, clock, value)

    # ----------------------------------------------------------- aggregation
    def local_sketches(self) -> list[ECMSketch]:
        """The local sketches of all sites, ordered by site id."""
        return [node.sketch for node in self.nodes]

    def aggregate(self, epsilon_prime: float | None = None) -> ECMSketch:
        """Run one full aggregation round and return the root sketch."""
        report = AggregationReport()
        root = hierarchical_aggregate(
            self.local_sketches(),
            tree=self.tree,
            epsilon_prime=epsilon_prime,
            report=report,
        )
        self.last_report = report
        return root

    # ------------------------------------------------------------ guarantees
    def aggregation_levels(self) -> int:
        """Height of the aggregation tree."""
        return self.tree.height()

    def worst_case_window_error(self) -> float:
        """Theorem 4 / hierarchical bound on the aggregated window error."""
        return multi_level_error(self.config.epsilon_sw, self.aggregation_levels())

    def per_node_epsilon_for_target(self, target_epsilon: float) -> float:
        """Window error each site should use so the root meets ``target_epsilon``."""
        return epsilon_for_levels(target_epsilon, self.aggregation_levels())

    def total_records(self) -> int:
        """Total number of records processed across all sites."""
        return sum(node.records_processed for node in self.nodes)

    def __repr__(self) -> str:
        return "DistributedDeployment(nodes=%d, height=%d, counter=%s)" % (
            len(self.nodes),
            self.tree.height(),
            self.config.counter_type.value,
        )
