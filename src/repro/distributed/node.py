"""Stream nodes: the local sites of a distributed deployment.

Each node (a web-server mirror, a wireless access point, a NetFlow router...)
observes its own local stream and maintains a local ECM-sketch.  Nodes are the
leaves of the aggregation hierarchy built in
:mod:`repro.distributed.topology`, and the participants of the geometric
monitoring protocol in :mod:`repro.distributed.geometric`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from ..core.config import ECMConfig
from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError
from ..streams.stream import Stream, StreamRecord

__all__ = ["StreamNode"]


class StreamNode:
    """A site that observes one local stream and maintains a local ECM-sketch.

    Args:
        node_id: Unique identifier of the node (also used as the randomized
            wave stream tag so that distributed samples stay distinct).
        config: ECM-sketch configuration; all nodes of a deployment must share
            the same configuration for their sketches to be mergeable.
    """

    def __init__(self, node_id: int, config: ECMConfig) -> None:
        if node_id < 0:
            raise ConfigurationError("node_id must be non-negative, got %r" % (node_id,))
        self.node_id = node_id
        self.config = config
        self.sketch = ECMSketch(config, stream_tag=node_id)
        self.records_processed = 0

    # ---------------------------------------------------------------- update
    def observe(self, key: Hashable, clock: float, value: int = 1) -> None:
        """Process one local arrival."""
        self.sketch.add(key, clock, value)
        self.records_processed += 1

    def observe_record(self, record: StreamRecord) -> None:
        """Process one :class:`~repro.streams.stream.StreamRecord`."""
        self.observe(record.key, record.timestamp, record.value)

    def observe_stream(self, stream: Stream, batch_size: int | None = None) -> None:
        """Process every record of a local stream in order.

        Args:
            stream: The node's local stream.
            batch_size: When given, ingest through the batched fast path
                (:meth:`~repro.core.ecm_sketch.ECMSketch.add_many`) in chunks
                of this many records.  The resulting sketch state is identical
                to per-record ingestion, only faster.
        """
        if batch_size is None:
            for record in stream:
                self.observe_record(record)
            return
        for chunk in stream.iter_batches(batch_size):
            self.observe_batch(chunk)

    def observe_batch(self, records: Sequence[StreamRecord]) -> None:
        """Process one chunk of in-order records through the batched path."""
        if not records:
            return
        # add_many itself routes all-unit weights onto the counts-free path.
        self.sketch.add_many(
            [record.key for record in records],
            [record.timestamp for record in records],
            [record.value for record in records],
        )
        self.records_processed += len(records)

    def observe_records(self, records: Iterable[StreamRecord]) -> None:
        """Process an iterable of records in the given order."""
        for record in records:
            self.observe_record(record)

    def observe_columns(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
        batch_size: int | None = None,
    ) -> None:
        """Process pre-pivoted parallel columns through the batched path.

        This is the ingestion seam of the sharded runner
        (:mod:`repro.distributed.runner`): worker processes receive each
        node's local stream as plain (keys, clocks, values) lists — the
        cheapest layout to pickle — and feed them here in chunks.  The
        resulting sketch state is identical to per-record ingestion.

        Args:
            keys: Item keys, in stream order.
            clocks: Non-decreasing clock values, one per key.
            values: Optional per-arrival weights (defaults to 1 each).
            batch_size: Chunk size for ``add_many`` (defaults to the whole
                run at once).
        """
        total = len(keys)
        if not total:
            return
        step = total if batch_size is None else batch_size
        if step <= 0:
            raise ConfigurationError("batch_size must be positive, got %r" % (batch_size,))
        for start in range(0, total, step):
            stop = start + step
            self.sketch.add_many(
                keys[start:stop],
                clocks[start:stop],
                None if values is None else values[start:stop],
            )
        self.records_processed += total

    # --------------------------------------------------------------- queries
    def local_point_query(
        self, key: Hashable, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Point query against the node's local sketch only."""
        return self.sketch.point_query(key, range_length, now)

    def local_self_join(
        self, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Self-join query against the node's local sketch only."""
        return self.sketch.self_join(range_length, now)

    # ------------------------------------------------------------ networking
    def snapshot(self) -> ECMSketch:
        """The sketch the node would ship upstream during an aggregation round."""
        return self.sketch

    def upload_bytes(self) -> int:
        """Bytes this node transfers when shipping its sketch upstream."""
        return self.sketch.serialized_bytes()

    def __repr__(self) -> str:
        return "StreamNode(id=%d, records=%d, counter=%s)" % (
            self.node_id,
            self.records_processed,
            self.config.counter_type.value,
        )
