"""Geometric-method monitoring of threshold functions over ECM-sketches.

Section 6.2 of the paper combines ECM-sketches with the geometric method of
Sharfman, Schuster and Keren (SIGMOD 2006) to monitor, *continuously* and with
very little communication, whether a non-linear function of distributed
sliding-window streams crosses a threshold.  The running example — implemented
here — is the self-join (second frequency moment) of the union stream.

Protocol sketch.  Each site maintains a local ECM-sketch and extracts from it
a numeric *local statistics vector* (the Count-Min array of sliding-window
estimates for the monitored range).  At synchronisation time the coordinator
averages all local vectors into the *global estimate vector* ``e`` and
broadcasts it.  Between synchronisations each site tracks its *drift vector*
``u_i = e + (v_i(t) - v_i(t_sync))`` and checks a purely local constraint:
the monitored function must not change side of the threshold anywhere inside
the ball whose diameter is the segment ``[e, u_i]``.  The union of these balls
covers the convex hull of the drift vectors, which contains the true global
statistics vector — so as long as no site reports a local violation, the
global function value provably has not crossed the threshold, and no
communication at all is needed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from collections.abc import Hashable

import numpy as np

from ..core.config import ECMConfig
from ..core.errors import ConfigurationError
from ..streams.stream import Stream
from .node import StreamNode

__all__ = [
    "ThresholdFunction",
    "L2NormSquaredFunction",
    "SelfJoinFunction",
    "MonitoringStats",
    "GeometricMonitor",
]


class ThresholdFunction(abc.ABC):
    """A function of the global statistics vector, monitored against a threshold.

    Implementations must provide the function value and closed-form extrema
    over a Euclidean ball — the paper notes that simple functions such as
    self-joins admit such closed forms, which is what makes the local
    constraint check cheap.
    """

    @abc.abstractmethod
    def value(self, vector: np.ndarray) -> float:
        """Function value at ``vector``."""

    @abc.abstractmethod
    def max_over_ball(self, center: np.ndarray, radius: float) -> float:
        """Maximum of the function over the ball ``B(center, radius)``."""

    @abc.abstractmethod
    def min_over_ball(self, center: np.ndarray, radius: float) -> float:
        """Minimum of the function over the ball ``B(center, radius)``."""

    def crosses(self, center: np.ndarray, radius: float, threshold: float) -> bool:
        """True when the function may cross ``threshold`` inside the ball."""
        return (
            self.min_over_ball(center, radius) < threshold <= self.max_over_ball(center, radius)
        ) or (
            self.max_over_ball(center, radius) >= threshold > self.min_over_ball(center, radius)
        )


class L2NormSquaredFunction(ThresholdFunction):
    """``f(v) = scale * ||v||**2`` with closed-form ball extrema.

    The squared Euclidean norm is the workhorse of sketch-based self-join
    monitoring; its extrema over ``B(c, r)`` are ``scale*(||c|| + r)**2`` and
    ``scale*max(0, ||c|| - r)**2``.
    """

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive, got %r" % (scale,))
        self.scale = float(scale)

    def value(self, vector: np.ndarray) -> float:
        return self.scale * float(np.dot(vector, vector))

    def max_over_ball(self, center: np.ndarray, radius: float) -> float:
        norm = float(np.linalg.norm(center))
        return self.scale * (norm + radius) ** 2

    def min_over_ball(self, center: np.ndarray, radius: float) -> float:
        norm = float(np.linalg.norm(center))
        return self.scale * max(0.0, norm - radius) ** 2


class SelfJoinFunction(L2NormSquaredFunction):
    """Self-join (F2) estimate of the union stream from the average sketch vector.

    The global statistics vector is the *average* of the local Count-Min
    arrays, so the union stream's array is ``num_sites`` times it; averaging
    the per-row sums of squares divides by ``depth``.  Hence
    ``f(v) = num_sites**2 / depth * ||v||**2`` estimates the sliding-window
    self-join size of the union stream.
    """

    def __init__(self, num_sites: int, depth: int) -> None:
        if num_sites <= 0 or depth <= 0:
            raise ConfigurationError("num_sites and depth must be positive")
        super().__init__(scale=float(num_sites) ** 2 / float(depth))
        self.num_sites = num_sites
        self.depth = depth


@dataclass
class MonitoringStats:
    """Communication accounting of a monitoring run."""

    arrivals: int = 0
    constraint_checks: int = 0
    local_violations: int = 0
    synchronizations: int = 0
    messages: int = 0
    transfer_bytes: int = 0
    threshold_crossings: list[float] = field(default_factory=list)

    def transfer_megabytes(self) -> float:
        """Transfer volume in megabytes."""
        return self.transfer_bytes / (1024.0 * 1024.0)


class _MonitoredSite:
    """Internal per-site state of the geometric monitoring protocol."""

    def __init__(self, node_id: int, config: ECMConfig, range_length: float | None) -> None:
        self.node = StreamNode(node_id=node_id, config=config)
        self.range_length = range_length
        self.synced_vector: np.ndarray | None = None

    def local_vector(self, now: float | None) -> np.ndarray:
        matrix = self.node.sketch.counter_estimates_matrix(self.range_length, now)
        return np.asarray(matrix, dtype=float).ravel()

    def drift_vector(self, estimate: np.ndarray, now: float | None) -> np.ndarray:
        if self.synced_vector is None:
            raise ConfigurationError("site has not been synchronised yet")
        return estimate + (self.local_vector(now) - self.synced_vector)


class GeometricMonitor:
    """Continuous threshold monitoring of a function over distributed streams.

    Args:
        num_sites: Number of observation sites.
        config: Shared ECM-sketch configuration.
        threshold: The monitored threshold value.
        function: The monitored function; defaults to the self-join of the
            union stream.
        range_length: Sliding-window query range used when extracting local
            statistics vectors (defaults to the full window).
        check_every: Local constraints are checked every that many arrivals
            per site; 1 reproduces the per-arrival protocol of the paper,
            larger values trade detection latency for speed.

    Example:
        >>> from repro.core import ECMConfig
        >>> config = ECMConfig.for_point_queries(epsilon=0.2, delta=0.2, window=1e6)
        >>> monitor = GeometricMonitor(num_sites=2, config=config, threshold=1e9)
        >>> monitor.initialize(now=0.0)
        >>> monitor.observe(0, "k1", clock=1.0)
        >>> monitor.stats.synchronizations >= 1
        True
    """

    def __init__(
        self,
        num_sites: int,
        config: ECMConfig,
        threshold: float,
        function: ThresholdFunction | None = None,
        range_length: float | None = None,
        check_every: int = 1,
    ) -> None:
        if num_sites <= 0:
            raise ConfigurationError("num_sites must be positive, got %r" % (num_sites,))
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive, got %r" % (threshold,))
        if check_every <= 0:
            raise ConfigurationError("check_every must be positive, got %r" % (check_every,))
        self.config = config
        self.threshold = float(threshold)
        self.range_length = range_length
        self.check_every = check_every
        self.function = function or SelfJoinFunction(num_sites=num_sites, depth=config.depth)
        self.sites: list[_MonitoredSite] = [
            _MonitoredSite(node_id=i, config=config, range_length=range_length)
            for i in range(num_sites)
        ]
        self.estimate_vector: np.ndarray | None = None
        self.estimate_value: float | None = None
        self.above_threshold = False
        self.stats = MonitoringStats()
        self._arrivals_since_check: dict[int, int] = {i: 0 for i in range(num_sites)}
        self._vector_bytes = config.width * config.depth * 4  # 32-bit counters

    # ----------------------------------------------------------------- setup
    @property
    def num_sites(self) -> int:
        """Number of observation sites."""
        return len(self.sites)

    def initialize(self, now: float | None = None) -> None:
        """Initial synchronisation: collect all local vectors, broadcast ``e``."""
        self._synchronize(now)

    def _synchronize(self, now: float | None) -> None:
        vectors = [site.local_vector(now) for site in self.sites]
        self.estimate_vector = np.mean(vectors, axis=0)
        self.estimate_value = self.function.value(self.estimate_vector)
        previous_side = self.above_threshold
        self.above_threshold = self.estimate_value >= self.threshold
        for site, vector in zip(self.sites, vectors, strict=False):
            site.synced_vector = vector
        # n uploads of local vectors + n broadcasts of the estimate vector.
        self.stats.synchronizations += 1
        self.stats.messages += 2 * len(self.sites)
        self.stats.transfer_bytes += 2 * len(self.sites) * self._vector_bytes
        if self.above_threshold != previous_side and self.stats.synchronizations > 1:
            self.stats.threshold_crossings.append(self.estimate_value)

    # ---------------------------------------------------------------- updates
    def observe(self, site_id: int, key: Hashable, clock: float, value: int = 1) -> bool:
        """Process one arrival at one site.

        Returns:
            True when the arrival triggered a global synchronisation (because
            the site's local constraint was violated).
        """
        if self.estimate_vector is None:
            raise ConfigurationError("call initialize() before observing arrivals")
        site = self.sites[site_id % len(self.sites)]
        site.node.observe(key, clock, value)
        self.stats.arrivals += 1
        self._arrivals_since_check[site_id % len(self.sites)] += 1
        if self._arrivals_since_check[site_id % len(self.sites)] < self.check_every:
            return False
        self._arrivals_since_check[site_id % len(self.sites)] = 0
        return self._check_site(site, clock)

    def observe_stream(self, stream: Stream, batch_size: int | None = None) -> None:
        """Process a whole stream, routing records to their observing sites.

        Args:
            stream: The stream to route across the sites.
            batch_size: When given, buffer records per site and ingest them
                through :meth:`~repro.distributed.node.StreamNode.observe_batch`.
                All buffers are flushed before every local constraint check
                (a synchronisation reads every site's statistics vector), so
                checks run against exactly the state the per-record path
                would see — protocol decisions, stats and estimates are
                identical.
        """
        if batch_size is None:
            for record in stream:
                self.observe(record.node, record.key, record.timestamp, record.value)
            return
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive, got %r" % (batch_size,))
        if self.estimate_vector is None:
            raise ConfigurationError("call initialize() before observing arrivals")
        buffers: dict[int, list] = {}
        buffered = 0
        num_sites = len(self.sites)
        for record in stream:
            site_index = record.node % num_sites
            buffers.setdefault(site_index, []).append(record)
            buffered += 1
            self.stats.arrivals += 1
            self._arrivals_since_check[site_index] += 1
            if self._arrivals_since_check[site_index] >= self.check_every:
                self._flush_buffers(buffers)
                buffered = 0
                self._arrivals_since_check[site_index] = 0
                self._check_site(self.sites[site_index], record.timestamp)
            elif buffered >= batch_size:
                self._flush_buffers(buffers)
                buffered = 0
        self._flush_buffers(buffers)

    def _flush_buffers(self, buffers: dict[int, list]) -> None:
        """Ingest and clear all per-site record buffers (stream order kept)."""
        for site_index, records in buffers.items():
            if records:
                self.sites[site_index].node.observe_batch(records)
                records.clear()

    def _check_site(self, site: _MonitoredSite, now: float) -> bool:
        """Evaluate the local geometric constraint of one site."""
        assert self.estimate_vector is not None
        self.stats.constraint_checks += 1
        drift = site.drift_vector(self.estimate_vector, now)
        center = (self.estimate_vector + drift) / 2.0
        radius = float(np.linalg.norm(self.estimate_vector - drift)) / 2.0
        ball_min = self.function.min_over_ball(center, radius)
        ball_max = self.function.max_over_ball(center, radius)
        if self.above_threshold:
            violated = ball_min < self.threshold
        else:
            violated = ball_max >= self.threshold
        if violated:
            self.stats.local_violations += 1
            self._synchronize(now)
            return True
        return False

    def synchronize(self, now: float | None = None) -> float:
        """Force a global synchronisation and return the refreshed estimate.

        Useful for periodic reporting: between violations the coordinator's
        estimate is intentionally stale (that staleness is what saves the
        communication), so dashboards can call this at a coarse cadence.
        """
        self._synchronize(now)
        assert self.estimate_value is not None
        return self.estimate_value

    # ---------------------------------------------------------------- queries
    def current_estimate(self) -> float:
        """Function value at the last synchronised global estimate vector."""
        if self.estimate_value is None:
            raise ConfigurationError("monitor has not been initialised")
        return self.estimate_value

    def exact_global_value(self, now: float | None = None) -> float:
        """Function value recomputed from all current local vectors (for tests).

        This performs the communication the protocol is designed to avoid; it
        exists so that experiments can verify the monitoring invariant
        ("no missed crossings between synchronisations").
        """
        vectors = [site.local_vector(now) for site in self.sites]
        return self.function.value(np.mean(vectors, axis=0))

    def __repr__(self) -> str:
        return "GeometricMonitor(sites=%d, threshold=%g, syncs=%d)" % (
            len(self.sites),
            self.threshold,
            self.stats.synchronizations,
        )
