"""Sharded, parallel simulation of distributed ECM-sketch deployments.

The paper's distributed experiments (Sections 5 and 7.3) simulate every
observation site inside one Python process, feeding arrivals one record at a
time.  That serial loop caps the reachable deployment size long before the
algorithms do: the sketches themselves compose freely (Theorems 1 and 4), so
nothing about the *simulation* has to be sequential across sites.

This module exploits exactly that independence.  A run is split into three
phases:

1. **Partition** — the logical stream is routed to its observation sites
   (``record.node % num_nodes``, the same rule the serial path uses) and the
   sites are grouped into *shards*, one work unit per shard.
2. **Ingest** — each shard replays its sites' local streams through the
   batched fast path (:meth:`~repro.distributed.node.StreamNode.observe_columns`,
   built on ``ECMSketch.add_many``).  With ``workers >= 2`` the shards run in
   separate OS processes (:class:`concurrent.futures.ProcessPoolExecutor`);
   site state travels back as the explicit wire format of
   :mod:`repro.serialization`, whose round-trip is exact.
3. **Join** — the filled sites feed the usual aggregation machinery
   (:func:`~repro.distributed.aggregation.hierarchical_aggregate`), which
   merges sketches through the vectorized ``ECMSketch.merge_many`` path.

Equivalence guarantee: a site's sketch depends only on its own arrival
subsequence, which partitioning preserves in order; the batched ingestion
path is state-identical to per-record ingestion; and the wire format
round-trips exactly.  A parallel run therefore produces sites — and hence a
root sketch — serialized byte-for-byte the same as the serial simulation
(enforced by ``tests/distributed/test_runner.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Hashable
from typing import Any

from ..core.config import ECMConfig
from ..core.errors import ConfigurationError
from ..streams.stream import Stream
from .node import StreamNode

__all__ = ["ShardPlan", "RunnerReport", "ShardedIngestRunner", "run_sharded_ingest"]

#: Default ``add_many`` chunk size used when replaying a site's local stream.
DEFAULT_BATCH_SIZE = 1_024

#: One site's local stream, pivoted into the picklable column layout.
NodeColumns = tuple[list[Hashable], list[float], list[int]]


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of observation sites to one parallel work unit.

    Attributes:
        shard_id: Index of the shard, in ``[0, num_shards)``.
        node_ids: Site identifiers the shard simulates, in ascending order.
    """

    shard_id: int
    node_ids: tuple[int, ...]


@dataclass
class RunnerReport:
    """Accounting of one sharded ingestion run.

    Attributes:
        workers: Worker processes used (1 means in-process execution).
        shards: Number of work units the sites were grouped into.
        records: Total records routed to sites.
        partition_seconds: Time spent routing records to sites.
        ingest_seconds: Time spent replaying local streams (wall clock,
            including process pool dispatch and state transfer).
        per_shard_records: Records handled by each shard.
    """

    workers: int = 1
    shards: int = 1
    records: int = 0
    partition_seconds: float = 0.0
    ingest_seconds: float = 0.0
    per_shard_records: list[int] = field(default_factory=list)

    def records_per_second(self) -> float:
        """Overall ingestion throughput of the run."""
        if self.ingest_seconds <= 0:
            return float("inf")
        return self.records / self.ingest_seconds


def plan_shards(num_nodes: int, shards: int) -> list[ShardPlan]:
    """Group ``num_nodes`` sites into ``shards`` contiguous work units.

    Contiguous blocks (rather than round-robin) keep each shard's sites
    adjacent, which makes the plan easy to reason about in reports; any
    partition works, since sites are independent.
    """
    if num_nodes <= 0:
        raise ConfigurationError("num_nodes must be positive, got %r" % (num_nodes,))
    if shards <= 0:
        raise ConfigurationError("shards must be positive, got %r" % (shards,))
    shards = min(shards, num_nodes)
    base, extra = divmod(num_nodes, shards)
    plans: list[ShardPlan] = []
    start = 0
    for shard_id in range(shards):
        size = base + (1 if shard_id < extra else 0)
        plans.append(ShardPlan(shard_id=shard_id, node_ids=tuple(range(start, start + size))))
        start += size
    return plans


def _partition_columns(stream: Stream, num_nodes: int) -> dict[int, NodeColumns]:
    """Route every record to its site, as per-site column lists.

    Uses the same ``record.node % num_nodes`` rule as
    :meth:`~repro.distributed.aggregation.DistributedDeployment.ingest`, so a
    trace generated for a different node count lands on the same sites.
    """
    columns: dict[int, NodeColumns] = {}
    for record in stream:
        node_id = record.node % num_nodes
        entry = columns.get(node_id)
        if entry is None:
            entry = ([], [], [])
            columns[node_id] = entry
        entry[0].append(record.key)
        entry[1].append(record.timestamp)
        entry[2].append(record.value)
    return columns


def _ingest_shard_payload(
    payload: tuple[dict[str, Any], list[tuple[int, NodeColumns]], int],
) -> list[tuple[int, int, dict[str, Any]]]:
    """Worker entry point: simulate one shard's sites and ship their state.

    Module-level (picklable) by design.  The configuration and the resulting
    sketches cross the process boundary as the explicit dictionaries of
    :mod:`repro.serialization` — the same wire format a real deployment would
    use — so the parent never depends on pickling sketch internals.
    """
    # Imported here as well so the function stays self-contained under spawn
    # start methods (fork inherits the parent's imports anyway).
    from ..serialization import config_from_dict, ecm_sketch_to_dict

    config_payload, node_columns, batch_size = payload
    config = config_from_dict(config_payload)
    results: list[tuple[int, int, dict[str, Any]]] = []
    for node_id, (keys, clocks, values) in node_columns:
        node = StreamNode(node_id=node_id, config=config)
        node.observe_columns(keys, clocks, values, batch_size=batch_size)
        results.append((node_id, node.records_processed, ecm_sketch_to_dict(node.sketch)))
    return results


class ShardedIngestRunner:
    """Replay a logical stream into a deployment's sites, shard by shard.

    Args:
        config: Shared ECM-sketch configuration of all sites.
        workers: Worker processes.  ``None`` or 1 runs every shard in-process
            (no pickling, no pool); ``>= 2`` fans shards out over a process
            pool.
        shards: Work units to split the sites into; defaults to ``workers``.
            More shards than workers simply queue.
        batch_size: ``add_many`` chunk size used when replaying local streams.

    Example:
        >>> from repro.core import ECMConfig
        >>> from repro.streams import WorldCupSyntheticTrace
        >>> trace = WorldCupSyntheticTrace(num_records=500, num_nodes=4).generate()
        >>> config = ECMConfig.for_point_queries(epsilon=0.2, delta=0.2, window=1e6)
        >>> runner = ShardedIngestRunner(config)
        >>> nodes = runner.ingest(trace, num_nodes=4)
        >>> sum(node.records_processed for node in nodes)
        500
    """

    def __init__(
        self,
        config: ECMConfig,
        workers: int | None = None,
        shards: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ConfigurationError("workers must be positive, got %r" % (workers,))
        if shards is not None and shards <= 0:
            raise ConfigurationError("shards must be positive, got %r" % (shards,))
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive, got %r" % (batch_size,))
        self.config = config
        self.workers = 1 if workers is None else workers
        self.shards = self.workers if shards is None else shards
        self.batch_size = batch_size
        self.last_report: RunnerReport | None = None

    def ingest(
        self, stream: Stream, num_nodes: int, nodes: list[StreamNode] | None = None
    ) -> list[StreamNode]:
        """Replay ``stream`` into ``num_nodes`` sites and return them.

        Args:
            stream: The logical stream to partition across sites.
            num_nodes: Number of observation sites.
            nodes: Existing (fresh) sites to fill, e.g. a
                :class:`~repro.distributed.aggregation.DistributedDeployment`'s;
                created when omitted.  Parallel runs replace each listed
                site's sketch with the shard-built one.

        Returns:
            The filled sites, ordered by site id.
        """
        from ..serialization import config_to_dict, ecm_sketch_from_dict

        if nodes is None:
            nodes = [StreamNode(node_id=i, config=self.config) for i in range(num_nodes)]
        elif len(nodes) != num_nodes:
            raise ConfigurationError(
                "%d nodes were provided for a %d-site run" % (len(nodes), num_nodes)
            )
        report = RunnerReport(workers=self.workers, records=len(stream))
        started = time.perf_counter()
        columns = _partition_columns(stream, num_nodes)
        report.partition_seconds = time.perf_counter() - started

        plans = plan_shards(num_nodes, self.shards)
        report.shards = len(plans)
        shard_work: list[list[tuple[int, NodeColumns]]] = []
        for plan in plans:
            work = [
                (node_id, columns[node_id]) for node_id in plan.node_ids if node_id in columns
            ]
            shard_work.append(work)
            report.per_shard_records.append(sum(len(entry[1][0]) for entry in work))

        ingest_started = time.perf_counter()
        if self.workers <= 1:
            for work in shard_work:
                for node_id, (keys, clocks, values) in work:
                    nodes[node_id].observe_columns(
                        keys, clocks, values, batch_size=self.batch_size
                    )
        else:
            config_payload = config_to_dict(self.config)
            payloads = [
                (config_payload, work, self.batch_size) for work in shard_work if work
            ]
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                for shard_results in pool.map(_ingest_shard_payload, payloads):
                    for node_id, processed, sketch_payload in shard_results:
                        node = nodes[node_id]
                        node.sketch = ecm_sketch_from_dict(sketch_payload)
                        node.records_processed += processed
        report.ingest_seconds = time.perf_counter() - ingest_started
        self.last_report = report
        return nodes


def run_sharded_ingest(
    stream: Stream,
    num_nodes: int,
    config: ECMConfig,
    workers: int | None = None,
    shards: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    nodes: list[StreamNode] | None = None,
) -> tuple[list[StreamNode], RunnerReport]:
    """Convenience wrapper: build a runner, ingest, return sites and report."""
    runner = ShardedIngestRunner(
        config, workers=workers, shards=shards, batch_size=batch_size
    )
    filled = runner.ingest(stream, num_nodes=num_nodes, nodes=nodes)
    assert runner.last_report is not None
    return filled, runner.last_report
