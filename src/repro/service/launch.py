"""Subprocess harness for ``repro serve`` — event-driven, parallel-run safe.

Everything that boots the serve CLI as a real process (the smoke tests, the
fault-injection suite, the service benchmark, the CI jobs) shares this
harness instead of hand-rolling ``Popen`` + pre-picked "free" ports +
connect-polling loops.  The differences matter for flakiness:

* The server binds **port 0** and announces the kernel-assigned port on its
  ``<label>: listening on <host>:<port>`` banner; a background reader thread
  parses it.  There is no window between probing for a free port and binding
  it, so parallel test runs cannot collide.
* Readiness is the banner event, not a sleep-poll loop: :meth:`wait_ready`
  returns the instant the line arrives, and fails fast (with the child's
  full output in the error) if the process dies first.
* The reader thread keeps accumulating output, so assertions about the
  drain banner after SIGTERM see everything the child printed.
"""

from __future__ import annotations
import contextlib

import os
import re
import subprocess
import sys
import threading

__all__ = ["ServeProcess", "repro_env"]

#: ``run_server``'s listening banner.  Shard workers print the same shape
#: under a ``repro-shard<k>`` label — anchoring on the exact label keeps the
#: router's banner unambiguous even though workers share the parent's stdout.
_BANNER = re.compile(r"^(?P<label>[A-Za-z0-9_.-]+): listening on (?P<host>\S+):(?P<port>\d+)\b")

_READY_TIMEOUT = 120.0


def repro_env(extra: dict[str, str] | None = None) -> dict[str, str]:
    """Subprocess environment with this checkout's ``src/`` on PYTHONPATH."""
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if extra:
        env.update(extra)
    return env


class ServeProcess:
    """One ``repro serve`` subprocess plus its output reader.

    Args:
        *args: Extra CLI arguments after ``repro <subcommand> --port 0``
            (stringified; pass ``"--shards", 4`` style pairs).
        env: Subprocess environment (defaults to :func:`repro_env`).
        label: Banner label announcing readiness (``run_server``'s
            ``label`` parameter; the default CLI prints ``repro-serve``).
        subcommand: CLI subcommand to boot.  ``repro gateway`` prints the
            same banner shape under the ``repro-gateway`` label, so the
            harness serves it too (pass ``subcommand="gateway"``,
            ``label="repro-gateway"``).

    Example:
        with ServeProcess("--mode", "flat") as server:
            port = server.wait_ready()
            ...
            assert server.stop() == 0
    """

    def __init__(
        self,
        *args: object,
        env: dict[str, str] | None = None,
        label: str = "repro-serve",
        subcommand: str = "serve",
    ) -> None:
        self.label = label
        self.command = [sys.executable, "-m", "repro", subcommand, "--port", "0"]
        self.command.extend(str(argument) for argument in args)
        self.port: int | None = None
        self._lines: list[str] = []
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self.process = subprocess.Popen(
            self.command,
            env=env if env is not None else repro_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self._reader = threading.Thread(
            target=self._pump, name="serve-output-reader", daemon=True
        )
        self._reader.start()

    def _pump(self) -> None:
        stream = self.process.stdout
        assert stream is not None
        for line in stream:
            with self._lock:
                self._lines.append(line)
            if not self._ready.is_set():
                match = _BANNER.match(line)
                if match and match.group("label") == self.label:
                    self.port = int(match.group("port"))
                    self._ready.set()
        # EOF before any banner: unblock waiters so they can report the
        # child's output instead of timing out.
        self._ready.set()

    @property
    def output(self) -> str:
        """Everything the child has printed so far (stdout + stderr)."""
        with self._lock:
            return "".join(self._lines)

    @property
    def returncode(self) -> int | None:
        return self.process.poll()

    def wait_ready(self, timeout: float = _READY_TIMEOUT) -> int:
        """Block until the listening banner arrives; returns the bound port."""
        if not self._ready.wait(timeout):
            self.kill()
            raise TimeoutError(
                "server did not announce a port within %.0f s; output so far:\n%s"
                % (timeout, self.output)
            )
        if self.port is None:
            raise RuntimeError(
                "server exited (code %r) before listening; output:\n%s"
                % (self.process.poll(), self.output)
            )
        return self.port

    def terminate(self) -> None:
        """SIGTERM (the server drains, snapshots and exits gracefully)."""
        if self.process.poll() is None:
            self.process.terminate()

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()

    def wait(self, timeout: float = 60.0) -> int:
        """Wait for exit; returns the exit code (reader thread joined)."""
        code = self.process.wait(timeout)
        self._reader.join(timeout=10.0)
        return code

    def stop(self, timeout: float = 60.0) -> int:
        """SIGTERM, await graceful exit, escalate to SIGKILL on timeout."""
        self.terminate()
        try:
            self.process.wait(timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(30.0)
        self._reader.join(timeout=10.0)
        return self.process.returncode if self.process.returncode is not None else -1

    def __enter__(self) -> ServeProcess:
        return self

    def __exit__(self, *exc_info: object) -> None:
        # Cleanup path: tests that care about graceful shutdown call stop()
        # themselves; anything still running here is torn down hard.
        if self.process.poll() is None:
            self.process.kill()
            with contextlib.suppress(subprocess.TimeoutExpired):
                self.process.wait(30.0)
        self._reader.join(timeout=10.0)
