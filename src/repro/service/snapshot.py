"""Atomic snapshot/restore of the whole service state.

A snapshot is one JSON document built on the existing serialization wire
format (:mod:`repro.serialization`): the service configuration, the ingest
watermarks, and the mode-specific sketch state — the flat sketch, the
hierarchical stack, or every site sketch plus the coordinator's round state.
Restoring a snapshot into a fresh process yields a service whose answers are
byte-identical to the process that wrote it, and which keeps ingesting from
the recorded high-water mark.

Writes are atomic: the document lands in a temporary file in the target
directory, is fsynced, and is moved over the destination with
:func:`os.replace` — a crash mid-write leaves the previous snapshot intact.
"""

from __future__ import annotations
import contextlib

import json
import os
import tempfile
from typing import Any, TYPE_CHECKING

from ..core.errors import ConfigurationError
from ..distributed.continuous import PeriodicAggregationCoordinator
from ..queries.hierarchical import HierarchicalECMSketch
from ..serialization import (
    ecm_sketch_from_dict,
    ecm_sketch_to_dict,
    hierarchical_from_dict,
    hierarchical_to_dict,
)
from . import failpoints
from .config import ServiceConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import SketchService

__all__ = [
    "SNAPSHOT_KIND",
    "SNAPSHOT_VERSION",
    "snapshot_payload",
    "write_snapshot",
    "load_snapshot",
    "service_state_from_snapshot",
]

SNAPSHOT_KIND = "service_snapshot"
SNAPSHOT_VERSION = 1


def snapshot_payload(service: SketchService) -> dict[str, Any]:
    """Serialize the *applied* state of a service to a plain dictionary.

    Arrivals still sitting in the ingest queue are not part of the snapshot;
    the service drains the queue before its final shutdown snapshot, so a
    graceful stop loses nothing that was acknowledged.
    """
    from .core import SketchService  # local import: cycle with core

    assert isinstance(service, SketchService)
    state = service.state
    state_payload: dict[str, Any]
    if isinstance(state, PeriodicAggregationCoordinator):
        state_payload = {
            "nodes": [ecm_sketch_to_dict(node.sketch) for node in state.nodes],
            "records_processed": [node.records_processed for node in state.nodes],
            "root": None if state._root is None else ecm_sketch_to_dict(state._root),
            "last_round_clock": state._last_round_clock,
            "next_round_clock": state._next_round_clock,
            "stats": {
                "arrivals": state.stats.arrivals,
                "rounds": state.stats.rounds,
                "transfer_bytes": state.stats.transfer_bytes,
                "messages": state.stats.messages,
                "round_clocks": list(state.stats.round_clocks),
            },
        }
    elif isinstance(state, HierarchicalECMSketch):
        state_payload = {"sketch": hierarchical_to_dict(state)}
    else:
        state_payload = {"sketch": ecm_sketch_to_dict(state)}
    return {
        "kind": SNAPSHOT_KIND,
        "version": SNAPSHOT_VERSION,
        "config": service.config.to_dict(),
        "records_ingested": service.records_ingested,
        "applied_clock": service.applied_clock,
        # Journal position and per-client applied seqs of this cut: restore
        # replays only journal records *after* this position, and retry
        # dedup picks up exactly where the snapshot left off.
        "journal_seq": service._applied_journal_seq,
        "applied_seqs": dict(service._applied_seqs),
        "state": state_payload,
    }


def write_snapshot(path: str | os.PathLike, payload: dict[str, Any]) -> str:
    """Atomically write a snapshot document; returns the final path."""
    destination = os.fspath(path)
    directory = os.path.dirname(destination) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, temporary = tempfile.mkstemp(
        prefix=os.path.basename(destination) + ".", suffix=".tmp", dir=directory
    )
    corrupt = failpoints.fire("snapshot.write")
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            document = json.dumps(payload, separators=(",", ":"))
            if corrupt is not None and corrupt[0] == "corrupt":
                # Injected corruption: half the document reaches the file —
                # what a crash inside an unprotected (non-atomic) writer
                # would leave.  The atomic-replace path still runs, so this
                # exercises the *reader's* validation, not the temp cleanup.
                document = document[: len(document) // 2]
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, destination)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temporary)
        raise
    return destination


def load_snapshot(path: str | os.PathLike) -> dict[str, Any]:
    """Read and validate a snapshot document."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError("snapshot is not valid JSON: %s" % (exc,)) from exc
    if not isinstance(payload, dict) or payload.get("kind") != SNAPSHOT_KIND:
        raise ConfigurationError("not a service snapshot: missing kind %r" % (SNAPSHOT_KIND,))
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ConfigurationError(
            "unsupported snapshot version %r (this build reads version %d)"
            % (payload.get("version"), SNAPSHOT_VERSION)
        )
    return payload


def service_state_from_snapshot(payload: dict[str, Any]) -> SketchService:
    """Rebuild a :class:`~repro.service.core.SketchService` from a snapshot."""
    from .core import SketchService

    config = ServiceConfig.from_dict(payload["config"])
    state_payload = payload["state"]
    state: Any
    if config.mode == "multisite":
        # Build a fresh coordinator through the same path a new service
        # would take, then overwrite every piece of mutable state with the
        # recorded one — sketches, per-site counters, round schedule, stats.
        coordinator = SketchService._build_state(config)
        assert isinstance(coordinator, PeriodicAggregationCoordinator)
        node_payloads = state_payload["nodes"]
        if len(node_payloads) != len(coordinator.nodes):
            raise ConfigurationError(
                "snapshot has %d site sketches but the configuration names %d sites"
                % (len(node_payloads), len(coordinator.nodes))
            )
        processed = state_payload.get("records_processed", [0] * len(node_payloads))
        for node, node_payload, count in zip(coordinator.nodes, node_payloads, processed, strict=False):
            node.sketch = ecm_sketch_from_dict(node_payload, backend=config.backend)
            node.records_processed = int(count)
        root_payload = state_payload.get("root")
        coordinator._root = (
            None
            if root_payload is None
            else ecm_sketch_from_dict(root_payload, backend=config.backend)
        )
        coordinator._last_round_clock = state_payload.get("last_round_clock")
        coordinator._next_round_clock = state_payload.get("next_round_clock")
        recorded = state_payload.get("stats", {})
        coordinator.stats.arrivals = int(recorded.get("arrivals", 0))
        coordinator.stats.rounds = int(recorded.get("rounds", 0))
        coordinator.stats.transfer_bytes = int(recorded.get("transfer_bytes", 0))
        coordinator.stats.messages = int(recorded.get("messages", 0))
        coordinator.stats.round_clocks = list(recorded.get("round_clocks", []))
        state = coordinator
    elif config.mode == "hierarchical":
        state = hierarchical_from_dict(state_payload["sketch"], backend=config.backend)
    else:
        state = ecm_sketch_from_dict(state_payload["sketch"], backend=config.backend)
    applied_seqs = {
        str(client): int(seq)
        for client, seq in dict(payload.get("applied_seqs", {})).items()
    }
    return SketchService(
        config,
        state=state,
        records_ingested=int(payload["records_ingested"]),
        applied_clock=payload.get("applied_clock"),
        applied_seqs=applied_seqs,
        journal_seq=int(payload.get("journal_seq", 0)),
    )
