"""Configuration of the live sketch service.

One :class:`ServiceConfig` fully determines the served sketch state (mode,
error budgets, window, backend) plus the service-level knobs (micro-batch
size, queue bound, background periods).  It round-trips through plain
dictionaries so snapshots can embed it and a restored process can rebuild an
identically parameterised service without re-specifying flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.config import CounterType
from ..core.errors import ConfigurationError
from ..windows.base import WindowModel

__all__ = ["ServiceConfig", "SERVICE_MODES"]

#: Supported service modes.
#:
#: * ``"flat"`` — one :class:`~repro.core.ecm_sketch.ECMSketch` over arbitrary
#:   scalar keys; point / self-join / arrivals queries.
#: * ``"hierarchical"`` — one
#:   :class:`~repro.queries.hierarchical.HierarchicalECMSketch` over an integer
#:   universe; adds range / heavy-hitter / quantile queries.
#: * ``"multisite"`` — ``sites`` local sketches behind a
#:   :class:`~repro.distributed.continuous.PeriodicAggregationCoordinator`;
#:   queries are answered from the latest aggregation round (stale by at most
#:   one period).
SERVICE_MODES = ("flat", "hierarchical", "multisite")


@dataclass
class ServiceConfig:
    """Full parameterisation of a :class:`~repro.service.core.SketchService`.

    Attributes:
        mode: One of :data:`SERVICE_MODES`.
        epsilon: Total point-query error budget of the served sketches.
        delta: Failure probability of the served sketches.
        window: Sliding-window length (stream-clock units, or arrivals for
            count-based windows).
        model: Time-based or count-based window model.
        counter_type: Sliding-window counter algorithm (EH by default).
        backend: Counter-grid storage backend: ``"auto"`` (registry picks
            the best supported backend) or an explicit registered name
            (``"kernels"``/``"columnar"``/``"object"``).
        universe_bits: Key-universe capacity of the hierarchical mode
            (``2**universe_bits`` distinct integer keys).
        sites: Number of observation sites of the multisite mode.
        period: Aggregation period of the multisite mode, in stream-clock
            units.
        batch_size: Micro-batch cap of the ingest loop: queued chunks are
            coalesced into ``add_many`` calls of at most this many arrivals.
        queue_chunks: Bound of the ingest queue, in chunks.  A full queue
            suspends producers (and, through the TCP server, stops reading
            from their sockets) — that is the backpressure path.
        expire_every: Wall-clock period of the background ``expire`` sweep,
            in seconds (``None`` disables the sweep).
        snapshot_every: Wall-clock period of the background snapshot task,
            in seconds (``None`` disables periodic snapshots).
        snapshot_path: Where snapshots are written (atomic replace).  Also
            the target of the final drain-on-shutdown snapshot.
        max_arrivals: Arrival cap per window for wave counters.
        seed: Hash seed shared by all served sketches.
        shards: When set, serve through the sharded tier: a front-end router
            partitions the key universe (or the sites, in multisite mode)
            across this many :class:`~repro.service.core.SketchService`
            worker processes.  ``None`` serves from one in-process service.
        pool: Serve a multi-tenant :class:`~repro.service.pool.TenantPool`
            instead of one sketch: every stateful op is namespaced by a
            ``tenant`` id, and this config becomes the default tenant
            parameterisation (per-tenant overrides at ``tenant_create``).
            Composes with ``shards``: tenants are hashed across workers
            ahead of the key partition, each worker running its own pool.
        pool_dir: Durable pool directory — the SQLite tenant catalog plus
            per-tenant eviction snapshots live here.  Required when ``pool``
            is set.
        memory_budget_bytes: Resident-memory budget of the pool, summed over
            per-tenant ``memory_bytes()``.  When the accounted total exceeds
            it, cold tenants are evicted (LRU) to snapshots until it fits.
            ``None`` disables eviction.
        journal_dir: Directory of the write-ahead ingest journal.  When set,
            every validated chunk is journaled *before* it is acked, the
            journal rotates at snapshot epochs, and a restarted service
            replays the tail on boot — no acked record is lost to a crash.
            ``None`` disables journaling (the pre-WAL durability posture).
        journal_fsync: Per-append ``os.fsync`` of the journal.  The default
            (``False``) flushes to the OS on every record — durable against
            process crashes, which is what the supervisor heals — while the
            fsync upgrade buys power-loss durability at a throughput cost.
        dedup_clients: Per-client ingest dedup window size: the service
            remembers the highest acked ``(client_id, seq)`` for this many
            most-recent clients, so a retried chunk is acked idempotently
            instead of double-applied.  Exactly-once ingest holds as long
            as a client's entry is not evicted mid-retry.
        supervise: Automatic shard recovery in the sharded tier: the router
            watches worker liveness and respawns dead shards (snapshot
            restore + journal replay) with capped exponential backoff.
            Off by default — the unsupervised tier fails fast and leaves
            recovery to the operator (``restart_shard``).
    """

    mode: str = "flat"
    epsilon: float = 0.05
    delta: float = 0.05
    window: float = 1_000_000.0
    model: WindowModel = WindowModel.TIME_BASED
    counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM
    backend: str = "auto"
    universe_bits: int = 12
    sites: int = 4
    period: float = 10_000.0
    batch_size: int = 1_024
    queue_chunks: int = 64
    expire_every: float | None = 5.0
    snapshot_every: float | None = None
    snapshot_path: str | None = None
    max_arrivals: int | None = None
    seed: int = 0
    shards: int | None = None
    pool: bool = False
    pool_dir: str | None = None
    memory_budget_bytes: int | None = None
    journal_dir: str | None = None
    journal_fsync: bool = False
    dedup_clients: int = 1_024
    supervise: bool = False

    def __post_init__(self) -> None:
        if self.mode not in SERVICE_MODES:
            raise ConfigurationError(
                "mode must be one of %s, got %r" % (", ".join(SERVICE_MODES), self.mode)
            )
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive, got %r" % (self.batch_size,))
        if self.queue_chunks <= 0:
            raise ConfigurationError("queue_chunks must be positive, got %r" % (self.queue_chunks,))
        if self.mode == "multisite" and self.sites <= 0:
            raise ConfigurationError("sites must be positive, got %r" % (self.sites,))
        if self.mode == "multisite" and self.period <= 0:
            raise ConfigurationError("period must be positive, got %r" % (self.period,))
        if self.expire_every is not None and self.expire_every <= 0:
            raise ConfigurationError("expire_every must be positive, got %r" % (self.expire_every,))
        if self.snapshot_every is not None and self.snapshot_every <= 0:
            raise ConfigurationError(
                "snapshot_every must be positive, got %r" % (self.snapshot_every,)
            )
        if self.snapshot_every is not None and self.snapshot_path is None:
            raise ConfigurationError("snapshot_every requires snapshot_path")
        if self.shards is not None:
            if self.shards <= 0:
                raise ConfigurationError("shards must be positive, got %r" % (self.shards,))
            if self.mode == "multisite" and self.shards > self.sites:
                raise ConfigurationError(
                    "multisite sharding partitions sites across workers: shards (%d) "
                    "cannot exceed sites (%d)" % (self.shards, self.sites)
                )
        if self.pool:
            if self.pool_dir is None:
                raise ConfigurationError("pool requires pool_dir (catalog + eviction snapshots)")
            if self.snapshot_path is not None or self.snapshot_every is not None:
                raise ConfigurationError(
                    "pool manages per-tenant snapshots itself; "
                    "snapshot_path/snapshot_every do not apply"
                )
        if self.memory_budget_bytes is not None:
            if not self.pool:
                raise ConfigurationError("memory_budget_bytes requires pool")
            if self.memory_budget_bytes <= 0:
                raise ConfigurationError(
                    "memory_budget_bytes must be positive, got %r" % (self.memory_budget_bytes,)
                )
        if self.pool_dir is not None and not self.pool:
            raise ConfigurationError("pool_dir requires pool")
        if self.dedup_clients <= 0:
            raise ConfigurationError(
                "dedup_clients must be positive, got %r" % (self.dedup_clients,)
            )
        if self.journal_fsync and self.journal_dir is None:
            raise ConfigurationError("journal_fsync requires journal_dir")
        if self.journal_dir is not None and self.pool:
            raise ConfigurationError(
                "journaling of pooled tenants is not supported yet; "
                "journal_dir does not compose with pool"
            )
        if self.supervise and self.shards is None:
            raise ConfigurationError("supervise requires shards (it heals the sharded tier)")

    # ------------------------------------------------------------- wire form
    def to_dict(self) -> dict[str, Any]:
        """Plain-dictionary form (JSON-compatible scalars only)."""
        return {
            "mode": self.mode,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "window": self.window,
            "model": self.model.value,
            "counter_type": self.counter_type.value,
            "backend": self.backend,
            "universe_bits": self.universe_bits,
            "sites": self.sites,
            "period": self.period,
            "batch_size": self.batch_size,
            "queue_chunks": self.queue_chunks,
            "expire_every": self.expire_every,
            "snapshot_every": self.snapshot_every,
            "snapshot_path": self.snapshot_path,
            "max_arrivals": self.max_arrivals,
            "seed": self.seed,
            "shards": self.shards,
            "pool": self.pool,
            "pool_dir": self.pool_dir,
            "memory_budget_bytes": self.memory_budget_bytes,
            "journal_dir": self.journal_dir,
            "journal_fsync": self.journal_fsync,
            "dedup_clients": self.dedup_clients,
            "supervise": self.supervise,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> ServiceConfig:
        """Rebuild a configuration serialized by :meth:`to_dict`."""
        try:
            return cls(
                mode=payload["mode"],
                epsilon=payload["epsilon"],
                delta=payload["delta"],
                window=payload["window"],
                model=WindowModel(payload["model"]),
                counter_type=CounterType(payload["counter_type"]),
                backend=payload["backend"],
                universe_bits=int(payload["universe_bits"]),
                sites=int(payload["sites"]),
                period=payload["period"],
                batch_size=int(payload["batch_size"]),
                queue_chunks=int(payload["queue_chunks"]),
                expire_every=payload.get("expire_every"),
                snapshot_every=payload.get("snapshot_every"),
                snapshot_path=payload.get("snapshot_path"),
                max_arrivals=payload.get("max_arrivals"),
                seed=int(payload.get("seed", 0)),
                shards=payload.get("shards"),
                pool=bool(payload.get("pool", False)),
                pool_dir=payload.get("pool_dir"),
                memory_budget_bytes=payload.get("memory_budget_bytes"),
                # Absent in pre-journal snapshots; default to the old posture.
                journal_dir=payload.get("journal_dir"),
                journal_fsync=bool(payload.get("journal_fsync", False)),
                dedup_clients=int(payload.get("dedup_clients", 1_024)),
                supervise=bool(payload.get("supervise", False)),
            )
        except (KeyError, ValueError) as exc:
            raise ConfigurationError("malformed service config payload: %s" % (exc,)) from exc

    # --------------------------------------------------------------- summary
    def describe(self) -> dict[str, Any]:
        """The subset of the configuration a client needs to build matching load."""
        info: dict[str, Any] = {
            "mode": self.mode,
            "epsilon": self.epsilon,
            "window": self.window,
            "model": self.model.value,
            "counter_type": self.counter_type.value,
            "backend": self.backend,
            "batch_size": self.batch_size,
        }
        if self.mode == "hierarchical":
            info["universe_bits"] = self.universe_bits
        if self.mode == "multisite":
            info["sites"] = self.sites
            info["period"] = self.period
        if self.shards is not None:
            info["shards"] = self.shards
        if self.pool:
            info["pool"] = True
            info["memory_budget_bytes"] = self.memory_budget_bytes
        if self.journal_dir is not None:
            info["journaled"] = True
        if self.supervise:
            info["supervised"] = True
        return info
