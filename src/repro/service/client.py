"""The client surface of the sketch-service protocol.

One typed request layer, two faces:

* :class:`ServiceClient` — the asyncio implementation.  Every protocol
  operation is implemented exactly once, here.
* :class:`SyncServiceClient` — the blocking face for tests, scripts and
  interactive use: a thin wrapper that drives a private event loop and
  delegates every call to an inner :class:`ServiceClient`.

Connecting performs the ``hello`` handshake: the client announces its
:data:`~repro.service.protocol.PROTOCOL_VERSION` and refuses servers with a
different protocol major (:class:`~repro.service.errors.VersionMismatchError`
— also raised when the server predates the handshake entirely).

Failures are typed: an ``ok: false`` response raises the exception class
matching its error code (see :mod:`repro.service.errors`), so
``except TenantNotFoundError`` works against a remote server exactly like
in-process.  Results are typed too — :meth:`ServiceClient.get_info` /
:meth:`ServiceClient.get_stats` return dataclasses, ``heavy_hitters``
returns :class:`~repro.service.models.HeavyHitter` rows (tuple-compatible
with the old pairs).  The old dict-returning ``info()``/``stats()`` remain
as one-release deprecation shims.

Every operation takes an optional ``tenant`` keyword: against a pooled
server it namespaces the call to that tenant; against a single-sketch
server passing one raises :class:`~repro.service.errors.PoolDisabledError`.
"""

from __future__ import annotations
import contextlib

import asyncio
import socket
import time
import warnings
from collections.abc import Hashable, Sequence
from typing import Any

from .errors import (
    ProtocolError,
    ServiceRequestError,
    VersionMismatchError,
    exception_for_error,
)
from .models import HeavyHitter, ServerInfo, ServerStats, TenantDescription, TenantStats
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_message,
    protocol_major,
)

__all__ = ["ServiceRequestError", "ServiceClient", "SyncServiceClient", "wait_for_server"]


def wait_for_server(host: str = "127.0.0.1", port: int = 7600, timeout: float = 30.0) -> None:
    """Block until a server accepts TCP connections on ``host:port``.

    The standard boot handshake for anything spawning ``repro serve`` as a
    subprocess (tests, benchmarks, scripts): poll with short connects until
    the listener is up.

    Raises:
        TimeoutError: Nothing listened within ``timeout`` seconds.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection((host, port), timeout=0.25).close()
            return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError("no server listening on %s:%d after %.0f s" % (host, port, timeout))


def _unwrap(response: dict[str, Any]) -> Any:
    if not isinstance(response, dict) or "ok" not in response:
        raise ProtocolError("malformed response: %r" % (response,))
    if not response["ok"]:
        raise exception_for_error(response.get("error"))
    return response.get("result")


class ServiceClient:
    """Asyncio client for one sketch-service connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        #: Protocol version the server announced at handshake (``None``
        #: when the connection was opened with ``handshake=False``).
        self.server_protocol_version: str | None = None

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 7600, handshake: bool = True
    ) -> ServiceClient:
        """Open a connection and (by default) run the version handshake.

        Raises:
            VersionMismatchError: The server speaks a different protocol
                major, or predates the ``hello`` operation entirely.
        """
        reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
        client = cls(reader, writer)
        if handshake:
            try:
                await client.hello()
            except VersionMismatchError:
                await client.close()
                raise
            except ServiceRequestError as exc:
                await client.close()
                raise VersionMismatchError(
                    "server did not complete the protocol handshake "
                    "(pre-2.0 server?): %s" % (exc,)
                ) from exc
        return client

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await self._writer.wait_closed()

    async def __aenter__(self) -> ServiceClient:
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def request(self, message: dict[str, Any]) -> Any:
        """Send one request and return its unwrapped result.

        Raises the typed exception for the response's error code on any
        ``ok: false`` answer.
        """
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _unwrap(decode_line(line))

    @staticmethod
    def _message(op: str, tenant: str | None, **fields: Any) -> dict[str, Any]:
        message: dict[str, Any] = {"op": op}
        if tenant is not None:
            message["tenant"] = tenant
        for name, value in fields.items():
            if value is not None:
                message[name] = value
        return message

    # ------------------------------------------------------------- handshake
    async def hello(self) -> dict[str, Any]:
        """Exchange protocol versions; raises on an incompatible major."""
        result = dict(
            await self.request({"op": "hello", "protocol_version": PROTOCOL_VERSION})
        )
        version = str(result.get("protocol_version", ""))
        if protocol_major(version) != protocol_major(PROTOCOL_VERSION):
            raise VersionMismatchError(
                "server speaks protocol %s, this client speaks %s"
                % (version, PROTOCOL_VERSION)
            )
        self.server_protocol_version = version
        return result

    # ------------------------------------------------------------ operations
    async def ping(self) -> str:
        return str(await self.request({"op": "ping"}))

    async def get_info(self) -> ServerInfo:
        """Static server parameters, typed."""
        return ServerInfo.from_payload(dict(await self.request({"op": "info"})))

    async def get_stats(self) -> ServerStats:
        """Live server counters, typed."""
        return ServerStats.from_payload(dict(await self.request({"op": "stats"})))

    async def info(self) -> dict[str, Any]:
        """Deprecated: use :meth:`get_info` (this returns its ``.raw``)."""
        warnings.warn(
            "ServiceClient.info() is deprecated; use get_info() (ServerInfo.raw "
            "holds the full payload)",
            DeprecationWarning,
            stacklevel=2,
        )
        return (await self.get_info()).raw

    async def stats(self) -> dict[str, Any]:
        """Deprecated: use :meth:`get_stats` (this returns its ``.raw``)."""
        warnings.warn(
            "ServiceClient.stats() is deprecated; use get_stats() (ServerStats.raw "
            "holds the full payload)",
            DeprecationWarning,
            stacklevel=2,
        )
        return (await self.get_stats()).raw

    async def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
        site: int = 0,
        tenant: str | None = None,
    ) -> int:
        message = self._message("ingest", tenant, site=site)
        message["keys"] = list(keys)
        message["clocks"] = list(clocks)
        if values is not None:
            message["values"] = list(values)
        result = await self.request(message)
        return int(result["accepted"])

    async def drain(self, tenant: str | None = None) -> float | None:
        result = await self.request(self._message("drain", tenant))
        return result.get("applied_clock")

    async def expire(self, tenant: str | None = None) -> float | None:
        """Force one expiry sweep; returns the applied clock."""
        result = await self.request(self._message("expire", tenant))
        return result.get("applied_clock")

    async def point(
        self,
        key: Hashable,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> float:
        message = self._message("point", tenant, range=range_length)
        message["key"] = key
        return float(await self.request(message))

    async def range_query(
        self,
        lo: int,
        hi: int,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> float:
        return float(
            await self.request(self._message("range", tenant, lo=lo, hi=hi, range=range_length))
        )

    async def heavy_hitters(
        self,
        phi: float,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> list[HeavyHitter]:
        rows = await self.request(
            self._message("heavy_hitters", tenant, phi=phi, range=range_length)
        )
        return [HeavyHitter(int(key), float(estimate)) for key, estimate in rows]

    async def quantile(
        self,
        fraction: float,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> int:
        return int(
            await self.request(
                self._message("quantile", tenant, fraction=fraction, range=range_length)
            )
        )

    async def quantiles(
        self,
        fractions: Sequence[float],
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> list[int]:
        result = await self.request(
            self._message("quantiles", tenant, fractions=list(fractions), range=range_length)
        )
        return [int(key) for key in result]

    async def self_join(
        self, range_length: float | None = None, tenant: str | None = None
    ) -> float:
        return float(await self.request(self._message("self_join", tenant, range=range_length)))

    async def arrivals(
        self, range_length: float | None = None, tenant: str | None = None
    ) -> float:
        """Estimated in-window arrival total."""
        return float(await self.request(self._message("arrivals", tenant, range=range_length)))

    async def staleness(
        self, now: float | None = None, tenant: str | None = None
    ) -> float:
        """Multisite answer staleness at stream clock ``now``."""
        return float(await self.request(self._message("staleness", tenant, now=now)))

    async def snapshot(
        self, path: str | None = None, tenant: str | None = None
    ) -> str:
        result = await self.request(self._message("snapshot", tenant, path=path))
        return str(result["path"])

    async def restart_shard(self, shard: int) -> dict[str, Any]:
        """Ask a sharded server to respawn one worker from its snapshot."""
        return dict(await self.request({"op": "restart_shard", "shard": shard}))

    # ------------------------------------------------------ tenant lifecycle
    async def create_tenant(
        self, tenant: str, config: dict[str, Any] | None = None
    ) -> TenantStats:
        """Create a tenant on a pooled server (optional config overrides)."""
        result = await self.request(self._message("tenant_create", tenant, config=config))
        return TenantStats.from_payload(dict(result))

    async def delete_tenant(self, tenant: str) -> None:
        """Delete a tenant: its live state, snapshot and catalog entry."""
        await self.request(self._message("tenant_delete", tenant))

    async def list_tenants(self) -> list[TenantDescription]:
        """Describe every tenant in the pool's catalog."""
        rows = await self.request({"op": "tenant_list"})
        return [TenantDescription.from_payload(dict(row)) for row in rows]

    async def tenant_stats(self, tenant: str) -> TenantStats:
        """Live counters of one tenant (restores it when evicted)."""
        result = await self.request(self._message("tenant_stats", tenant))
        return TenantStats.from_payload(dict(result))

    async def pool_sweep(self) -> dict[str, Any]:
        """Run the pool's expiry + budget-enforcement sweep immediately."""
        return dict(await self.request({"op": "pool_sweep"}))

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"})


class SyncServiceClient:
    """Blocking face of :class:`ServiceClient`: same operations, no loop.

    Drives a private event loop around an inner async client, so every
    operation exists exactly once (in :class:`ServiceClient`) and this class
    is pure delegation.  Not thread-safe: one thread per client, like one
    task per async client.

    Example:
        >>> client = SyncServiceClient.connect(port=7600)   # doctest: +SKIP
        >>> client.ingest(["a", "b"], [1.0, 2.0])           # doctest: +SKIP
        2
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, client: ServiceClient) -> None:
        self._loop = loop
        self._client = client

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7600,
        timeout: float | None = 30.0,
        handshake: bool = True,
    ) -> SyncServiceClient:
        """Open a blocking connection (and handshake) to a running server."""
        loop = asyncio.new_event_loop()
        try:
            opening = ServiceClient.connect(host, port, handshake=handshake)
            if timeout is not None:
                client = loop.run_until_complete(asyncio.wait_for(opening, timeout))
            else:
                client = loop.run_until_complete(opening)
        except BaseException:
            loop.close()
            raise
        return cls(loop, client)

    def _call(self, coroutine: Any) -> Any:
        return self._loop.run_until_complete(coroutine)

    def close(self) -> None:
        """Close the connection and the private loop."""
        try:
            self._call(self._client.close())
        finally:
            self._loop.close()

    def __enter__(self) -> SyncServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def server_protocol_version(self) -> str | None:
        return self._client.server_protocol_version

    def request(self, message: dict[str, Any]) -> Any:
        """Send one request and return its unwrapped result."""
        return self._call(self._client.request(message))

    # ------------------------------------------------------------ operations
    def ping(self) -> str:
        return self._call(self._client.ping())

    def hello(self) -> dict[str, Any]:
        return self._call(self._client.hello())

    def get_info(self) -> ServerInfo:
        return self._call(self._client.get_info())

    def get_stats(self) -> ServerStats:
        return self._call(self._client.get_stats())

    def info(self) -> dict[str, Any]:
        """Deprecated: use :meth:`get_info` (this returns its ``.raw``)."""
        warnings.warn(
            "SyncServiceClient.info() is deprecated; use get_info() (ServerInfo.raw "
            "holds the full payload)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._call(self._client.get_info()).raw

    def stats(self) -> dict[str, Any]:
        """Deprecated: use :meth:`get_stats` (this returns its ``.raw``)."""
        warnings.warn(
            "SyncServiceClient.stats() is deprecated; use get_stats() (ServerStats.raw "
            "holds the full payload)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._call(self._client.get_stats()).raw

    def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
        site: int = 0,
        tenant: str | None = None,
    ) -> int:
        return self._call(self._client.ingest(keys, clocks, values, site=site, tenant=tenant))

    def drain(self, tenant: str | None = None) -> float | None:
        return self._call(self._client.drain(tenant=tenant))

    def expire(self, tenant: str | None = None) -> float | None:
        return self._call(self._client.expire(tenant=tenant))

    def point(
        self,
        key: Hashable,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> float:
        return self._call(self._client.point(key, range_length, tenant=tenant))

    def range_query(
        self,
        lo: int,
        hi: int,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> float:
        return self._call(self._client.range_query(lo, hi, range_length, tenant=tenant))

    def heavy_hitters(
        self,
        phi: float,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> list[HeavyHitter]:
        return self._call(self._client.heavy_hitters(phi, range_length, tenant=tenant))

    def quantile(
        self,
        fraction: float,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> int:
        return self._call(self._client.quantile(fraction, range_length, tenant=tenant))

    def quantiles(
        self,
        fractions: Sequence[float],
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> list[int]:
        return self._call(self._client.quantiles(fractions, range_length, tenant=tenant))

    def self_join(
        self, range_length: float | None = None, tenant: str | None = None
    ) -> float:
        return self._call(self._client.self_join(range_length, tenant=tenant))

    def arrivals(
        self, range_length: float | None = None, tenant: str | None = None
    ) -> float:
        return self._call(self._client.arrivals(range_length, tenant=tenant))

    def staleness(self, now: float | None = None, tenant: str | None = None) -> float:
        return self._call(self._client.staleness(now, tenant=tenant))

    def snapshot(self, path: str | None = None, tenant: str | None = None) -> str:
        return self._call(self._client.snapshot(path, tenant=tenant))

    def restart_shard(self, shard: int) -> dict[str, Any]:
        return self._call(self._client.restart_shard(shard))

    # ------------------------------------------------------ tenant lifecycle
    def create_tenant(
        self, tenant: str, config: dict[str, Any] | None = None
    ) -> TenantStats:
        return self._call(self._client.create_tenant(tenant, config))

    def delete_tenant(self, tenant: str) -> None:
        self._call(self._client.delete_tenant(tenant))

    def list_tenants(self) -> list[TenantDescription]:
        return self._call(self._client.list_tenants())

    def tenant_stats(self, tenant: str) -> TenantStats:
        return self._call(self._client.tenant_stats(tenant))

    def pool_sweep(self) -> dict[str, Any]:
        return self._call(self._client.pool_sweep())

    def shutdown(self) -> None:
        self._call(self._client.shutdown())
