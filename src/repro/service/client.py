"""Thin clients for the sketch-service protocol.

Two flavours over the same newline-delimited-JSON wire format:

* :class:`ServiceClient` — asyncio streams; used by the replay load driver
  and anything already living in an event loop.
* :class:`SyncServiceClient` — a blocking socket client for tests, scripts
  and interactive use; no event loop required.

Both raise :class:`ServiceRequestError` when the server answers
``{"ok": false}``, carrying the server's error message.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from .protocol import MAX_LINE_BYTES, ProtocolError, decode_line, encode_message

__all__ = ["ServiceRequestError", "ServiceClient", "SyncServiceClient", "wait_for_server"]


def wait_for_server(host: str = "127.0.0.1", port: int = 7600, timeout: float = 30.0) -> None:
    """Block until a server accepts TCP connections on ``host:port``.

    The standard boot handshake for anything spawning ``repro serve`` as a
    subprocess (tests, benchmarks, scripts): poll with short connects until
    the listener is up.

    Raises:
        TimeoutError: Nothing listened within ``timeout`` seconds.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection((host, port), timeout=0.25).close()
            return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError("no server listening on %s:%d after %.0f s" % (host, port, timeout))


class ServiceRequestError(Exception):
    """The server rejected a request (``ok: false`` response)."""


def _unwrap(response: Dict[str, Any]) -> Any:
    if not isinstance(response, dict) or "ok" not in response:
        raise ProtocolError("malformed response: %r" % (response,))
    if not response["ok"]:
        raise ServiceRequestError(str(response.get("error", "unknown server error")))
    return response.get("result")


class ServiceClient:
    """Asyncio client for one sketch-service connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 7600) -> "ServiceClient":
        """Open a connection to a running server."""
        reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def request(self, message: Dict[str, Any]) -> Any:
        """Send one request and return its unwrapped result."""
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _unwrap(decode_line(line))

    # ------------------------------------------------------------ operations
    async def ping(self) -> str:
        return str(await self.request({"op": "ping"}))

    async def info(self) -> Dict[str, Any]:
        return dict(await self.request({"op": "info"}))

    async def stats(self) -> Dict[str, Any]:
        return dict(await self.request({"op": "stats"}))

    async def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Optional[Sequence[int]] = None,
        site: int = 0,
    ) -> int:
        message: Dict[str, Any] = {
            "op": "ingest", "keys": list(keys), "clocks": list(clocks), "site": site,
        }
        if values is not None:
            message["values"] = list(values)
        result = await self.request(message)
        return int(result["accepted"])

    async def drain(self) -> Optional[float]:
        result = await self.request({"op": "drain"})
        return result.get("applied_clock")

    async def point(self, key: Hashable, range_length: Optional[float] = None) -> float:
        message: Dict[str, Any] = {"op": "point", "key": key}
        if range_length is not None:
            message["range"] = range_length
        return float(await self.request(message))

    async def range_query(
        self, lo: int, hi: int, range_length: Optional[float] = None
    ) -> float:
        message: Dict[str, Any] = {"op": "range", "lo": lo, "hi": hi}
        if range_length is not None:
            message["range"] = range_length
        return float(await self.request(message))

    async def heavy_hitters(
        self, phi: float, range_length: Optional[float] = None
    ) -> List[Tuple[int, float]]:
        message: Dict[str, Any] = {"op": "heavy_hitters", "phi": phi}
        if range_length is not None:
            message["range"] = range_length
        return [(int(key), float(estimate)) for key, estimate in await self.request(message)]

    async def quantile(self, fraction: float, range_length: Optional[float] = None) -> int:
        message: Dict[str, Any] = {"op": "quantile", "fraction": fraction}
        if range_length is not None:
            message["range"] = range_length
        return int(await self.request(message))

    async def self_join(self, range_length: Optional[float] = None) -> float:
        message: Dict[str, Any] = {"op": "self_join"}
        if range_length is not None:
            message["range"] = range_length
        return float(await self.request(message))

    async def snapshot(self, path: Optional[str] = None) -> str:
        message: Dict[str, Any] = {"op": "snapshot"}
        if path is not None:
            message["path"] = path
        result = await self.request(message)
        return str(result["path"])

    async def restart_shard(self, shard: int) -> Dict[str, Any]:
        """Ask a sharded server to respawn one worker from its snapshot."""
        return dict(await self.request({"op": "restart_shard", "shard": shard}))

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"})


class SyncServiceClient:
    """Blocking socket client: same operations, no event loop.

    Example:
        >>> client = SyncServiceClient.connect(port=7600)   # doctest: +SKIP
        >>> client.ingest(["a", "b"], [1.0, 2.0])           # doctest: +SKIP
        2
    """

    def __init__(self, sock: socket.socket) -> None:
        self._socket = sock
        self._file = sock.makefile("rwb")

    @classmethod
    def connect(
        cls, host: str = "127.0.0.1", port: int = 7600, timeout: Optional[float] = 30.0
    ) -> "SyncServiceClient":
        """Open a blocking connection to a running server."""
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock)

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "SyncServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request(self, message: Dict[str, Any]) -> Any:
        """Send one request and return its unwrapped result."""
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        return _unwrap(decode_line(line))

    # ------------------------------------------------------------ operations
    def ping(self) -> str:
        return str(self.request({"op": "ping"}))

    def info(self) -> Dict[str, Any]:
        return dict(self.request({"op": "info"}))

    def stats(self) -> Dict[str, Any]:
        return dict(self.request({"op": "stats"}))

    def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Optional[Sequence[int]] = None,
        site: int = 0,
    ) -> int:
        message: Dict[str, Any] = {
            "op": "ingest", "keys": list(keys), "clocks": list(clocks), "site": site,
        }
        if values is not None:
            message["values"] = list(values)
        return int(self.request(message)["accepted"])

    def drain(self) -> Optional[float]:
        return self.request({"op": "drain"}).get("applied_clock")

    def point(self, key: Hashable, range_length: Optional[float] = None) -> float:
        message: Dict[str, Any] = {"op": "point", "key": key}
        if range_length is not None:
            message["range"] = range_length
        return float(self.request(message))

    def range_query(self, lo: int, hi: int, range_length: Optional[float] = None) -> float:
        message: Dict[str, Any] = {"op": "range", "lo": lo, "hi": hi}
        if range_length is not None:
            message["range"] = range_length
        return float(self.request(message))

    def heavy_hitters(
        self, phi: float, range_length: Optional[float] = None
    ) -> List[Tuple[int, float]]:
        message: Dict[str, Any] = {"op": "heavy_hitters", "phi": phi}
        if range_length is not None:
            message["range"] = range_length
        return [(int(key), float(estimate)) for key, estimate in self.request(message)]

    def quantile(self, fraction: float, range_length: Optional[float] = None) -> int:
        message: Dict[str, Any] = {"op": "quantile", "fraction": fraction}
        if range_length is not None:
            message["range"] = range_length
        return int(self.request(message))

    def self_join(self, range_length: Optional[float] = None) -> float:
        message: Dict[str, Any] = {"op": "self_join"}
        if range_length is not None:
            message["range"] = range_length
        return float(self.request(message))

    def snapshot(self, path: Optional[str] = None) -> str:
        message: Dict[str, Any] = {"op": "snapshot"}
        if path is not None:
            message["path"] = path
        return str(self.request(message)["path"])

    def restart_shard(self, shard: int) -> Dict[str, Any]:
        """Ask a sharded server to respawn one worker from its snapshot."""
        return dict(self.request({"op": "restart_shard", "shard": shard}))

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
