"""The client surface of the sketch-service protocol.

One typed request layer, two faces:

* :class:`ServiceClient` — the asyncio implementation.  Every protocol
  operation is implemented exactly once, here.
* :class:`SyncServiceClient` — the blocking face for tests, scripts and
  interactive use: a thin wrapper that drives a private event loop and
  delegates every call to an inner :class:`ServiceClient`.

Connecting performs the ``hello`` handshake: the client announces its
:data:`~repro.service.protocol.PROTOCOL_VERSION` and refuses servers with a
different protocol major (:class:`~repro.service.errors.VersionMismatchError`
— also raised when the server predates the handshake entirely).

Failures are typed: an ``ok: false`` response raises the exception class
matching its error code (see :mod:`repro.service.errors`), so
``except TenantNotFoundError`` works against a remote server exactly like
in-process.  Results are typed too — :meth:`ServiceClient.get_info` /
:meth:`ServiceClient.get_stats` return dataclasses, ``heavy_hitters``
returns :class:`~repro.service.models.HeavyHitter` rows (tuple-compatible
with the old pairs).  The raw response payloads stay reachable through the
dataclasses' ``.raw`` escape hatch.

Every operation takes an optional ``tenant`` keyword: against a pooled
server it namespaces the call to that tenant; against a single-sketch
server passing one raises :class:`~repro.service.errors.PoolDisabledError`.

Connections may carry a :class:`RetryPolicy`: typed operations then retry
transient failures (dropped connections, dead shards, expired deadlines)
with capped exponential backoff and jitter, reconnecting and re-running the
handshake as needed.  Retried ingest is exactly-once: every ingest chunk
carries this connection's ``client`` id and a monotonically increasing
``seq``, and the server acknowledges-but-skips chunks it already applied.
"""

from __future__ import annotations
import contextlib

import asyncio
import random
import socket
import time
import uuid
from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import Any

from .errors import (
    DeadlineExceededError,
    ProtocolError,
    ServiceRequestError,
    ShardUnavailableError,
    VersionMismatchError,
    exception_for_error,
)
from .models import HeavyHitter, ServerInfo, ServerStats, TenantDescription, TenantStats
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_message,
    protocol_major,
)

__all__ = [
    "ServiceRequestError",
    "RetryPolicy",
    "ServiceClient",
    "SyncServiceClient",
    "wait_for_server",
]

#: Deadline applied to operations whose server-side work is legitimately
#: slow (drain, snapshot, restart_shard): a retrying client never cuts them
#: off at the ordinary per-operation budget.
_SLOW_OP_DEADLINE = 600.0

#: Bound on establishing one TCP connection (RL006): a black-holed endpoint
#: (dropped SYNs, dead NAT entry) would otherwise park connect() until the
#: kernel gives up, far past any retry budget.
_CONNECT_TIMEOUT = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """Retry and deadline policy for one client connection.

    Attributes:
        attempts: Maximum attempts per operation (1 disables retries).
        base_delay: Backoff before the first retry, in seconds.
        max_delay: Cap of the exponential backoff.
        jitter: Multiplicative jitter fraction added to each delay (0.5
            means delays are scaled by a uniform factor in ``[1.0, 1.5]``),
            de-synchronizing clients that failed together.
        deadline: Overall per-operation budget in seconds (``None`` means
            unbounded); covers every attempt plus the backoff between them.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: float | None = 30.0

    def delay_for(self, retry_index: int) -> float:
        """Backoff before retry number ``retry_index`` (0-based), jittered."""
        delay = min(self.max_delay, self.base_delay * (2.0**retry_index))
        return delay * (1.0 + random.random() * self.jitter)


def wait_for_server(host: str = "127.0.0.1", port: int = 7600, timeout: float = 30.0) -> None:
    """Block until a server accepts TCP connections on ``host:port``.

    The standard boot handshake for anything spawning ``repro serve`` as a
    subprocess (tests, benchmarks, scripts): poll with short connects until
    the listener is up.

    Raises:
        TimeoutError: Nothing listened within ``timeout`` seconds.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection((host, port), timeout=0.25).close()
            return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError("no server listening on %s:%d after %.0f s" % (host, port, timeout))


def _unwrap(response: dict[str, Any]) -> Any:
    if not isinstance(response, dict) or "ok" not in response:
        raise ProtocolError("malformed response: %r" % (response,))
    if not response["ok"]:
        raise exception_for_error(response.get("error"))
    return response.get("result")


class ServiceClient:
    """Asyncio client for one sketch-service connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        retry: RetryPolicy | None = None,
        host: str | None = None,
        port: int | None = None,
        handshake: bool = True,
    ) -> None:
        self._reader = reader
        self._writer = writer
        #: Protocol version the server announced at handshake (``None``
        #: when the connection was opened with ``handshake=False``).
        self.server_protocol_version: str | None = None
        #: Retry policy for typed operations (``None`` = fail on first error).
        self.retry = retry
        self._host = host
        self._port = port
        self._handshake = handshake
        #: Stable id of this logical client, sent with every ingest chunk
        #: (with a per-connection ``seq``) so servers can deduplicate retries.
        self.client_id = uuid.uuid4().hex[:16]
        self._ingest_seq = 0
        #: Attempts that were retried (any operation, any cause).
        self.retries = 0
        #: Successful transport reconnects performed by the retry layer.
        self.reconnects = 0

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7600,
        handshake: bool = True,
        retry: RetryPolicy | None = None,
        timeout: float = _CONNECT_TIMEOUT,
    ) -> ServiceClient:
        """Open a connection and (by default) run the version handshake.

        Args:
            retry: Optional :class:`RetryPolicy`; when given, typed
                operations retry transient failures (reconnecting as
                needed) and carry per-operation deadlines.
            timeout: Bound on establishing the TCP connection; raises the
                builtin :class:`TimeoutError` (an ``OSError``, hence
                retryable) when it expires.

        Raises:
            VersionMismatchError: The server speaks a different protocol
                major, or predates the ``hello`` operation entirely.
        """
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=MAX_LINE_BYTES), timeout
        )
        client = cls(reader, writer, retry=retry, host=host, port=port, handshake=handshake)
        if handshake:
            try:
                await client.hello()
            except VersionMismatchError:
                await client.close()
                raise
            except ServiceRequestError as exc:
                await client.close()
                raise VersionMismatchError(
                    "server did not complete the protocol handshake "
                    "(pre-2.0 server?): %s" % (exc,)
                ) from exc
        return client

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await self._writer.wait_closed()

    async def __aenter__(self) -> ServiceClient:
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def request(self, message: dict[str, Any], deadline: float | None = None) -> Any:
        """Send one request and return its unwrapped result (one attempt).

        Raises the typed exception for the response's error code on any
        ``ok: false`` answer, and :class:`DeadlineExceededError` when no
        response arrives within ``deadline`` seconds.
        """
        if deadline is not None:
            try:
                return await asyncio.wait_for(self._request_once(message), deadline)
            except asyncio.TimeoutError:
                # The wait_for cancelled the round-trip mid-flight; the
                # server's eventual response would desynchronize the stream,
                # so the transport must not be reused.
                await self._invalidate()
                raise DeadlineExceededError(
                    "no response to %r within %.1f s" % (message.get("op"), deadline),
                    op=str(message.get("op")) if message.get("op") is not None else None,
                ) from None
        return await self._request_once(message)

    async def _request_once(self, message: dict[str, Any]) -> Any:
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _unwrap(decode_line(line))

    async def _invalidate(self) -> None:
        """Tear down a transport whose response stream cannot be trusted.

        Called when :meth:`call` gives up with a reconnect still pending: a
        deadline cancelled ``_request_once`` mid-round-trip, so the server's
        eventual response is sitting unread in the stream.  Reusing that
        connection would pair the *next* request with the *stale* response
        — silently misattributing every answer after it — so the transport
        is closed and any later use fails as an honest connection error.
        """
        with contextlib.suppress(OSError):
            await self.close()

    async def _reconnect(self) -> None:
        """Replace a dead/desynchronized transport with a fresh connection."""
        if self._host is None or self._port is None:
            raise ConnectionError("cannot reconnect: connection endpoint unknown")
        with contextlib.suppress(OSError):
            await self.close()
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port, limit=MAX_LINE_BYTES),
            _CONNECT_TIMEOUT,
        )
        self._reader = reader
        self._writer = writer
        self.reconnects += 1
        if self._handshake:
            await self.hello()

    async def call(self, message: dict[str, Any], deadline: float | None = None) -> Any:
        """Run one raw protocol message under the connection's retry policy.

        Without a policy this is a plain single-attempt :meth:`request`.
        With one, transient failures — dropped connections, dead shards,
        expired per-attempt deadlines — are retried with capped exponential
        backoff until the policy's attempts or overall deadline run out.
        After a transport-level failure the connection is torn down and
        re-opened (with handshake): a half-written request would otherwise
        desynchronize the response stream.
        """
        policy = self.retry
        if policy is None:
            return await self.request(message, deadline=deadline)
        budget = policy.deadline if deadline is None else deadline
        start = time.monotonic()
        attempt = 0
        needs_reconnect = False
        while True:
            remaining: float | None = None
            if budget is not None:
                remaining = budget - (time.monotonic() - start)
                if remaining <= 0.0:
                    if needs_reconnect:
                        await self._invalidate()
                    raise DeadlineExceededError(
                        "operation %r exceeded its %.1f s deadline after %d attempt(s)"
                        % (message.get("op"), budget, attempt),
                        op=str(message.get("op")) if message.get("op") is not None else None,
                    )
            try:
                if needs_reconnect:
                    await self._reconnect()
                    needs_reconnect = False
                return await self.request(message, deadline=remaining)
            except (ShardUnavailableError, DeadlineExceededError, OSError) as exc:
                # A shard rejection arrives on a healthy stream; anything
                # transport-shaped (or an abandoned in-flight request)
                # forces a reconnect before the next attempt.
                if not isinstance(exc, ShardUnavailableError):
                    needs_reconnect = True
                attempt += 1
                if attempt >= policy.attempts:
                    if needs_reconnect:
                        await self._invalidate()
                    raise
                self.retries += 1
                await asyncio.sleep(policy.delay_for(attempt - 1))

    @staticmethod
    def _message(op: str, tenant: str | None, **fields: Any) -> dict[str, Any]:
        message: dict[str, Any] = {"op": op}
        if tenant is not None:
            message["tenant"] = tenant
        for name, value in fields.items():
            if value is not None:
                message[name] = value
        return message

    # ------------------------------------------------------------- handshake
    async def hello(self) -> dict[str, Any]:
        """Exchange protocol versions; raises on an incompatible major."""
        result = dict(
            await self.request({"op": "hello", "protocol_version": PROTOCOL_VERSION})
        )
        version = str(result.get("protocol_version", ""))
        if protocol_major(version) != protocol_major(PROTOCOL_VERSION):
            raise VersionMismatchError(
                "server speaks protocol %s, this client speaks %s"
                % (version, PROTOCOL_VERSION)
            )
        self.server_protocol_version = version
        return result

    # ------------------------------------------------------------ operations
    async def ping(self) -> str:
        return str(await self.call({"op": "ping"}))

    async def get_info(self) -> ServerInfo:
        """Static server parameters, typed."""
        return ServerInfo.from_payload(dict(await self.call({"op": "info"})))

    async def get_stats(self) -> ServerStats:
        """Live server counters, typed."""
        return ServerStats.from_payload(dict(await self.call({"op": "stats"})))

    async def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
        site: int = 0,
        tenant: str | None = None,
    ) -> int:
        message = self._message("ingest", tenant, site=site)
        message["keys"] = list(keys)
        message["clocks"] = list(clocks)
        if values is not None:
            message["values"] = list(values)
        # Exactly-once marker: the same (client, seq) pair is reused across
        # retries of this chunk, so a server that applied it but lost the
        # ack re-acknowledges without double-counting.  (Pooled tenants are
        # not journaled and ignore the marker.)
        self._ingest_seq += 1
        message["client"] = self.client_id
        message["seq"] = self._ingest_seq
        result = await self.call(message)
        return int(result["accepted"])

    async def drain(self, tenant: str | None = None) -> float | None:
        result = await self.call(self._message("drain", tenant), deadline=_SLOW_OP_DEADLINE)
        return result.get("applied_clock")

    async def expire(self, tenant: str | None = None) -> float | None:
        """Force one expiry sweep; returns the applied clock."""
        result = await self.call(self._message("expire", tenant))
        return result.get("applied_clock")

    async def point(
        self,
        key: Hashable,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> float:
        message = self._message("point", tenant, range=range_length)
        message["key"] = key
        return float(await self.call(message))

    async def range_query(
        self,
        lo: int,
        hi: int,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> float:
        return float(
            await self.call(self._message("range", tenant, lo=lo, hi=hi, range=range_length))
        )

    async def heavy_hitters(
        self,
        phi: float,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> list[HeavyHitter]:
        rows = await self.call(
            self._message("heavy_hitters", tenant, phi=phi, range=range_length)
        )
        return [HeavyHitter(int(key), float(estimate)) for key, estimate in rows]

    async def quantile(
        self,
        fraction: float,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> int:
        return int(
            await self.call(
                self._message("quantile", tenant, fraction=fraction, range=range_length)
            )
        )

    async def quantiles(
        self,
        fractions: Sequence[float],
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> list[int]:
        result = await self.call(
            self._message("quantiles", tenant, fractions=list(fractions), range=range_length)
        )
        return [int(key) for key in result]

    async def self_join(
        self, range_length: float | None = None, tenant: str | None = None
    ) -> float:
        return float(await self.call(self._message("self_join", tenant, range=range_length)))

    async def arrivals(
        self, range_length: float | None = None, tenant: str | None = None
    ) -> float:
        """Estimated in-window arrival total."""
        return float(await self.call(self._message("arrivals", tenant, range=range_length)))

    async def staleness(
        self, now: float | None = None, tenant: str | None = None
    ) -> float:
        """Multisite answer staleness at stream clock ``now``."""
        return float(await self.call(self._message("staleness", tenant, now=now)))

    async def snapshot(
        self, path: str | None = None, tenant: str | None = None
    ) -> str:
        result = await self.call(self._message("snapshot", tenant, path=path), deadline=_SLOW_OP_DEADLINE)
        return str(result["path"])

    async def restart_shard(self, shard: int) -> dict[str, Any]:
        """Ask a sharded server to respawn one worker from its snapshot."""
        return dict(
            await self.call({"op": "restart_shard", "shard": shard}, deadline=_SLOW_OP_DEADLINE)
        )

    async def failpoint(
        self,
        spec: str | None = None,
        disarm: bool = False,
        name: str | None = None,
        shard: int | None = None,
    ) -> dict[str, Any]:
        """Arm or disarm fault-injection sites (:mod:`repro.service.failpoints`).

        Deliberately bypasses the retry layer: a failpoint that severs the
        connection would otherwise re-arm itself on every retry.
        """
        message: dict[str, Any] = {"op": "failpoint"}
        if spec is not None:
            message["spec"] = spec
        if disarm:
            message["disarm"] = True
        if name is not None:
            message["name"] = name
        if shard is not None:
            message["shard"] = shard
        return dict(await self.request(message))

    # ------------------------------------------------------ tenant lifecycle
    async def create_tenant(
        self, tenant: str, config: dict[str, Any] | None = None
    ) -> TenantStats:
        """Create a tenant on a pooled server (optional config overrides)."""
        result = await self.call(self._message("tenant_create", tenant, config=config))
        return TenantStats.from_payload(dict(result))

    async def delete_tenant(self, tenant: str) -> None:
        """Delete a tenant: its live state, snapshot and catalog entry."""
        await self.call(self._message("tenant_delete", tenant))

    async def list_tenants(self) -> list[TenantDescription]:
        """Describe every tenant in the pool's catalog."""
        rows = await self.call({"op": "tenant_list"})
        return [TenantDescription.from_payload(dict(row)) for row in rows]

    async def tenant_stats(self, tenant: str) -> TenantStats:
        """Live counters of one tenant (restores it when evicted)."""
        result = await self.call(self._message("tenant_stats", tenant))
        return TenantStats.from_payload(dict(result))

    async def pool_sweep(self) -> dict[str, Any]:
        """Run the pool's expiry + budget-enforcement sweep immediately."""
        return dict(await self.call({"op": "pool_sweep"}, deadline=_SLOW_OP_DEADLINE))

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"})


class SyncServiceClient:
    """Blocking face of :class:`ServiceClient`: same operations, no loop.

    Drives a private event loop around an inner async client, so every
    operation exists exactly once (in :class:`ServiceClient`) and this class
    is pure delegation.  Not thread-safe: one thread per client, like one
    task per async client.

    Example:
        >>> client = SyncServiceClient.connect(port=7600)   # doctest: +SKIP
        >>> client.ingest(["a", "b"], [1.0, 2.0])           # doctest: +SKIP
        2
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, client: ServiceClient) -> None:
        self._loop = loop
        self._client = client

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7600,
        timeout: float | None = 30.0,
        handshake: bool = True,
        retry: RetryPolicy | None = None,
    ) -> SyncServiceClient:
        """Open a blocking connection (and handshake) to a running server."""
        loop = asyncio.new_event_loop()
        try:
            opening = ServiceClient.connect(host, port, handshake=handshake, retry=retry)
            if timeout is not None:
                client = loop.run_until_complete(asyncio.wait_for(opening, timeout))
            else:
                client = loop.run_until_complete(opening)
        except BaseException:
            loop.close()
            raise
        return cls(loop, client)

    def _call(self, coroutine: Any) -> Any:
        return self._loop.run_until_complete(coroutine)

    def close(self) -> None:
        """Close the connection and the private loop."""
        try:
            self._call(self._client.close())
        finally:
            self._loop.close()

    def __enter__(self) -> SyncServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def server_protocol_version(self) -> str | None:
        return self._client.server_protocol_version

    @property
    def client_id(self) -> str:
        """Stable id sent with every ingest chunk (exactly-once dedup key)."""
        return self._client.client_id

    @property
    def retries(self) -> int:
        """Attempts the retry layer re-ran (any operation, any cause)."""
        return self._client.retries

    @property
    def reconnects(self) -> int:
        """Transport reconnects the retry layer performed."""
        return self._client.reconnects

    def request(self, message: dict[str, Any]) -> Any:
        """Send one request and return its unwrapped result."""
        return self._call(self._client.request(message))

    # ------------------------------------------------------------ operations
    def ping(self) -> str:
        return self._call(self._client.ping())

    def hello(self) -> dict[str, Any]:
        return self._call(self._client.hello())

    def get_info(self) -> ServerInfo:
        return self._call(self._client.get_info())

    def get_stats(self) -> ServerStats:
        return self._call(self._client.get_stats())

    def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
        site: int = 0,
        tenant: str | None = None,
    ) -> int:
        return self._call(self._client.ingest(keys, clocks, values, site=site, tenant=tenant))

    def drain(self, tenant: str | None = None) -> float | None:
        return self._call(self._client.drain(tenant=tenant))

    def expire(self, tenant: str | None = None) -> float | None:
        return self._call(self._client.expire(tenant=tenant))

    def point(
        self,
        key: Hashable,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> float:
        return self._call(self._client.point(key, range_length, tenant=tenant))

    def range_query(
        self,
        lo: int,
        hi: int,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> float:
        return self._call(self._client.range_query(lo, hi, range_length, tenant=tenant))

    def heavy_hitters(
        self,
        phi: float,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> list[HeavyHitter]:
        return self._call(self._client.heavy_hitters(phi, range_length, tenant=tenant))

    def quantile(
        self,
        fraction: float,
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> int:
        return self._call(self._client.quantile(fraction, range_length, tenant=tenant))

    def quantiles(
        self,
        fractions: Sequence[float],
        range_length: float | None = None,
        tenant: str | None = None,
    ) -> list[int]:
        return self._call(self._client.quantiles(fractions, range_length, tenant=tenant))

    def self_join(
        self, range_length: float | None = None, tenant: str | None = None
    ) -> float:
        return self._call(self._client.self_join(range_length, tenant=tenant))

    def arrivals(
        self, range_length: float | None = None, tenant: str | None = None
    ) -> float:
        return self._call(self._client.arrivals(range_length, tenant=tenant))

    def staleness(self, now: float | None = None, tenant: str | None = None) -> float:
        return self._call(self._client.staleness(now, tenant=tenant))

    def snapshot(self, path: str | None = None, tenant: str | None = None) -> str:
        return self._call(self._client.snapshot(path, tenant=tenant))

    def restart_shard(self, shard: int) -> dict[str, Any]:
        return self._call(self._client.restart_shard(shard))

    def failpoint(
        self,
        spec: str | None = None,
        disarm: bool = False,
        name: str | None = None,
        shard: int | None = None,
    ) -> dict[str, Any]:
        return self._call(self._client.failpoint(spec, disarm=disarm, name=name, shard=shard))

    # ------------------------------------------------------ tenant lifecycle
    def create_tenant(
        self, tenant: str, config: dict[str, Any] | None = None
    ) -> TenantStats:
        return self._call(self._client.create_tenant(tenant, config))

    def delete_tenant(self, tenant: str) -> None:
        self._call(self._client.delete_tenant(tenant))

    def list_tenants(self) -> list[TenantDescription]:
        return self._call(self._client.list_tenants())

    def tenant_stats(self, tenant: str) -> TenantStats:
        return self._call(self._client.tenant_stats(tenant))

    def pool_sweep(self) -> dict[str, Any]:
        return self._call(self._client.pool_sweep())

    def shutdown(self) -> None:
        self._call(self._client.shutdown())
