"""Typed result models of the client API.

The v2 client surface returns these instead of raw dicts: stable attribute
access for the fields every caller needs, with the complete wire payload
preserved on ``raw`` so nothing the server sends is lost.  All models are
immutable value objects built from one response payload.

:class:`HeavyHitter` is a ``NamedTuple`` on purpose — existing code that
destructures the old ``(key, estimate)`` pairs keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

__all__ = ["HeavyHitter", "ServerInfo", "ServerStats", "TenantDescription", "TenantStats"]


class HeavyHitter(NamedTuple):
    """One heavy hitter; tuple-compatible with the old ``(key, estimate)``."""

    key: int
    estimate: float


@dataclass(frozen=True)
class ServerInfo:
    """Static server parameters (the typed face of the ``info`` op)."""

    mode: str
    backend: str
    protocol_version: str
    epsilon: float
    window: float
    pool: bool
    shards: int | None
    raw: dict[str, Any] = field(repr=False)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> ServerInfo:
        shards = payload.get("shards")
        return cls(
            mode=str(payload.get("mode", "")),
            backend=str(payload.get("backend", "")),
            # 1.x servers answered info without a version field.
            protocol_version=str(payload.get("protocol_version", "1.0")),
            epsilon=float(payload.get("epsilon", 0.0)),
            window=float(payload.get("window", 0.0)),
            pool=bool(payload.get("pool", False)),
            shards=int(shards) if shards is not None else None,
            raw=dict(payload),
        )


@dataclass(frozen=True)
class ServerStats:
    """Live server counters (the typed face of the ``stats`` op).

    Works for all three serving shapes — single service, tenant pool and
    shard router — which share the fields below; shape-specific counters
    (per-shard details, pool governor totals, aggregation rounds) live in
    ``raw``.
    """

    records_ingested: int
    uptime_seconds: float
    draining: bool
    pool: bool
    applied_clock: float | None
    memory_bytes: int | None
    raw: dict[str, Any] = field(repr=False)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> ServerStats:
        memory = payload.get("memory_bytes", payload.get("accounted_memory_bytes"))
        return cls(
            records_ingested=int(payload.get("records_ingested", 0)),
            uptime_seconds=float(payload.get("uptime_seconds", 0.0)),
            draining=bool(payload.get("draining", False)),
            pool=bool(payload.get("pool", False)),
            applied_clock=payload.get("applied_clock"),
            memory_bytes=int(memory) if memory is not None else None,
            raw=dict(payload),
        )


@dataclass(frozen=True)
class TenantDescription:
    """One catalog entry from ``tenant_list`` (resident or evicted)."""

    tenant: str
    resident: bool
    mode: str
    backend: str
    records_ingested: int
    applied_clock: float | None
    snapshot_path: str | None
    memory_bytes: int | None
    raw: dict[str, Any] = field(repr=False)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> TenantDescription:
        memory = payload.get("memory_bytes")
        return cls(
            tenant=str(payload["tenant"]),
            resident=bool(payload.get("resident", False)),
            mode=str(payload.get("mode", "")),
            backend=str(payload.get("backend", "")),
            records_ingested=int(payload.get("records_ingested", 0)),
            applied_clock=payload.get("applied_clock"),
            snapshot_path=payload.get("snapshot_path"),
            memory_bytes=int(memory) if memory is not None else None,
            raw=dict(payload),
        )


@dataclass(frozen=True)
class TenantStats:
    """Live counters of one tenant (``tenant_create`` / ``tenant_stats``)."""

    tenant: str
    resident: bool
    records_ingested: int
    applied_clock: float | None
    memory_bytes: int | None
    raw: dict[str, Any] = field(repr=False)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> TenantStats:
        memory = payload.get("memory_bytes")
        return cls(
            tenant=str(payload.get("tenant", "")),
            resident=bool(payload.get("resident", False)),
            records_ingested=int(payload.get("records_ingested", 0)),
            applied_clock=payload.get("applied_clock"),
            memory_bytes=int(memory) if memory is not None else None,
            raw=dict(payload),
        )
