"""The TCP front end of the sketch service.

One :class:`SketchServer` wraps one :class:`~repro.service.core.SketchService`
behind a newline-delimited-JSON protocol (:mod:`repro.service.protocol`) on
``asyncio.start_server``.  Each connection is served by one coroutine that
reads a request line, dispatches it, and writes the response line — so a
connection's requests are handled strictly in order, and an ``ingest`` that
is suspended on the bounded queue stops the connection from being read
further: backpressure reaches the client's socket, not a buffer.

Shutdown is graceful by default (``shutdown`` op, :func:`run_server` on
SIGTERM/SIGINT, or :meth:`SketchServer.shutdown`): the listener closes, the
ingest queue drains, a final snapshot is written when a snapshot path is
configured, and only then does the process exit.
"""

from __future__ import annotations
import contextlib

import asyncio
import inspect
import json
import signal
import sys
from collections.abc import Callable
from typing import Any, TYPE_CHECKING

from ..core.errors import ConfigurationError, EmptyStructureError
from . import failpoints
from .config import ServiceConfig
from .core import IngestRejectedError, ServiceError, ServiceStoppedError, SketchService
from .errors import (
    BadRequestError,
    PoolDisabledError,
    TenantRequiredError,
    UnknownOperationError,
)
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    check_protocol_version,
    decode_line,
    encode_message,
    error_response,
    error_response_for,
    ok_response,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pool import TenantPool
    from .router import ShardRouter

__all__ = ["SketchServer", "ServingState", "dispatch_service_op", "run_server"]

#: Anything a :class:`SketchServer` can front: the in-process service core,
#: the multi-tenant pool, or the sharded router (which duck-type the same
#: surface, sometimes with awaitable results — :func:`dispatch_service_op`
#: awaits whatever it gets back).
# The whole alias is a string: the pool/router halves are TYPE_CHECKING-only
# (import cycle), so the union must not evaluate at runtime.
ServingState = "SketchService | TenantPool | ShardRouter"

#: Query operations dispatched straight to ``service.query``.
_QUERY_OPS = frozenset(
    ["point", "range", "heavy_hitters", "quantile", "quantiles", "self_join",
     "arrivals", "staleness", "root_state"]
)

#: Tenant lifecycle + pool-governor operations (pooled servers only).
_TENANT_OPS = frozenset(
    ["tenant_create", "tenant_delete", "tenant_list", "tenant_stats", "pool_sweep"]
)


async def _maybe_await(value: Any) -> Any:
    """Resolve a result that may be a plain value or an awaitable.

    :class:`~repro.service.core.SketchService` answers queries/stats
    synchronously; the shard router returns coroutines (it has to fan out
    over worker connections).  One dispatch path serves both.
    """
    if inspect.isawaitable(value):
        return await value
    return value


async def dispatch_service_op(service: ServingState, message: dict[str, Any]) -> Any:
    """Dispatch one protocol message against a service (or router) surface.

    Shared by the TCP server and the router's in-process shard backend, so a
    local shard answers through exactly the code path a TCP worker would.
    Raises the usual service/protocol errors; the callers map them to error
    envelopes (TCP) or propagate them (router merge logic).
    """
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("message is missing the 'op' field")
    pooled = bool(getattr(service, "supports_tenants", False))
    tenant = message.get("tenant")
    if tenant is not None:
        if not isinstance(tenant, str):
            raise BadRequestError("'tenant' must be a string", op=op)
        if not pooled:
            raise PoolDisabledError(
                "this server hosts a single sketch, not a tenant pool "
                "(start it with --pool to serve tenant %r)" % (tenant,),
                op=op,
            )
    if op == "ping":
        return "pong"
    if op == "hello":
        version = message.get("protocol_version", PROTOCOL_VERSION)
        check_protocol_version(version)
        return {"server": "repro-sketch-service", "protocol_version": PROTOCOL_VERSION}
    if op == "info":
        return await _maybe_await(service.info())
    if op == "stats":
        return await _maybe_await(service.stats())
    if op in _TENANT_OPS:
        if not pooled:
            raise PoolDisabledError("%s requires a pooled server (--pool)" % (op,), op=op)
        if op == "tenant_list":
            return await _maybe_await(service.tenant_list())
        if op == "pool_sweep":
            return await _maybe_await(service.sweep())
        if tenant is None:
            raise TenantRequiredError("%s requires a 'tenant'" % (op,), op=op)
        if op == "tenant_create":
            overrides = message.get("config")
            if overrides is not None and not isinstance(overrides, dict):
                raise BadRequestError("'config' must be an object when present", op=op)
            return await _maybe_await(service.tenant_create(tenant, overrides))
        if op == "tenant_delete":
            return await _maybe_await(service.tenant_delete(tenant))
        return await _maybe_await(service.tenant_stats(tenant))
    if op == "ingest":
        await failpoints.fire_async("server.ingest")
        keys = message.get("keys")
        clocks = message.get("clocks")
        if not isinstance(keys, list) or not isinstance(clocks, list):
            raise IngestRejectedError("ingest requires 'keys' and 'clocks' lists")
        values = message.get("values")
        if values is not None and not isinstance(values, list):
            raise IngestRejectedError("'values' must be a list when present")
        site = message.get("site", 0)
        if not isinstance(site, int) or isinstance(site, bool):
            raise IngestRejectedError("'site' must be an integer")
        client_id = message.get("client")
        if client_id is not None and not isinstance(client_id, str):
            raise IngestRejectedError("'client' must be a string when present")
        seq = message.get("seq")
        if seq is not None and (not isinstance(seq, int) or isinstance(seq, bool)):
            raise IngestRejectedError("'seq' must be an integer when present")
        if pooled:
            # Pooled tenants are not journaled (config forbids the combo),
            # so the retry identity is dropped rather than half-honoured.
            accepted = await service.ingest(keys, clocks, values, site=site, tenant=tenant)
        else:
            accepted = await service.ingest(
                keys, clocks, values, site=site, client_id=client_id, seq=seq
            )
        return {"accepted": accepted}
    if op == "drain":
        if pooled:
            return await _maybe_await(service.drain(tenant=tenant))
        await service.drain()
        return {"applied_clock": service.applied_clock}
    if op == "expire":
        if pooled:
            return await _maybe_await(service.expire_now(tenant=tenant))
        await _maybe_await(service.expire_now())
        return {"applied_clock": service.applied_clock}
    if op == "snapshot":
        path = message.get("path")
        if path is not None and not isinstance(path, str):
            raise ProtocolError("'path' must be a string when present")
        if pooled:
            return {"path": await _maybe_await(service.snapshot_async(path, tenant=tenant))}
        return {"path": await service.snapshot_async(path)}
    if op == "restart_shard":
        restart = getattr(service, "restart_shard", None)
        if restart is None:
            raise ServiceError("restart_shard requires a sharded server")
        shard = message.get("shard")
        if not isinstance(shard, int) or isinstance(shard, bool):
            raise ProtocolError("restart_shard requires an integer 'shard'")
        return await restart(shard)
    if op == "failpoint":
        # Fault injection: arm/disarm named failure sites in *this* process,
        # or (with 'shard') in one worker of a sharded server.  Inline
        # dispatch like restart_shard — an operator op, not a query.
        shard = message.get("shard")
        if shard is not None:
            forward = getattr(service, "forward_failpoint", None)
            if forward is None:
                raise ServiceError("'shard' targeting requires a sharded server")
            if not isinstance(shard, int) or isinstance(shard, bool):
                raise ProtocolError("'shard' must be an integer when present")
            return await forward(shard, message)
        spec = message.get("spec")
        if spec is not None:
            if not isinstance(spec, str):
                raise ProtocolError("'spec' must be a string when present")
            try:
                return {"armed": failpoints.configure(spec)}
            except failpoints.FailpointError as exc:
                raise BadRequestError(str(exc), op=op) from exc
        if message.get("disarm"):
            name = message.get("name")
            if name is not None and not isinstance(name, str):
                raise ProtocolError("'name' must be a string when present")
            failpoints.disarm(name)
        return {"armed": failpoints.armed()}
    if op in _QUERY_OPS:
        return await _maybe_await(service.query(op, message))
    raise UnknownOperationError("unknown op %r" % (op,))


class SketchServer:
    """Serve one :class:`~repro.service.core.SketchService` over TCP.

    Args:
        service: The service core, or a
            :class:`~repro.service.router.ShardRouter` fronting worker
            processes (not yet started; :meth:`start` starts it).
        host: Interface to bind.
        port: Port to bind (0 picks a free port; see :attr:`port` after
            :meth:`start`).
    """

    def __init__(self, service: ServingState, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown_event = asyncio.Event()
        self._shutting_down = False
        self._connections: set[asyncio.StreamWriter] = set()
        self.connections_served = 0
        self.requests_served = 0

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the service core and bind the listener."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port, limit=MAX_LINE_BYTES
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request or :meth:`shutdown` arrives."""
        if self._server is None:
            raise ServiceError("server is not started")
        await self._shutdown_event.wait()
        await self._finalize()

    async def shutdown(self) -> None:
        """Trigger a graceful shutdown (drain + final snapshot)."""
        self._shutdown_event.set()

    async def _finalize(self) -> None:
        if self._shutting_down:
            return
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            # Close every established connection before wait_closed():
            # handlers parked in readline() wake up with EOF and return.
            # Without this, Python >= 3.12.1 (where Server.wait_closed
            # really waits for all handlers) would hang for as long as any
            # idle client kept its connection open.
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=True)

    async def __aenter__(self) -> SketchServer:
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self._shutdown_event.set()
        await self._finalize()

    # ------------------------------------------------------------ connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_message(error_response("PROTOCOL", "request line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._dispatch_line(line)
                # "drop" here severs the connection *after* dispatch: the
                # request took effect but its ack is lost — the retry/dedup
                # scenario, as a failpoint.
                await failpoints.fire_async("server.respond")
                writer.write(encode_message(response))
                await writer.drain()
                if self._shutdown_event.is_set():
                    # The response (the shutdown ack, or this connection's
                    # last in-flight request) is on the wire; stop reading.
                    break
        except ConnectionResetError:
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.wait_closed()

    async def _dispatch_line(self, line: bytes) -> dict[str, Any]:
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            return error_response_for(exc)
        request_id = message.get("id")
        op = message.get("op") if isinstance(message.get("op"), str) else None
        try:
            result = await self._dispatch(message)
        except (
            ServiceError,
            ProtocolError,
            ConfigurationError,
            EmptyStructureError,
        ) as exc:
            return error_response_for(exc, op, request_id)
        except (TypeError, ValueError, KeyError) as exc:
            return error_response("BAD_REQUEST", "bad request: %s" % (exc,), op, request_id)
        self.requests_served += 1
        return ok_response(result, request_id)

    async def _dispatch(self, message: dict[str, Any]) -> Any:
        op = message.get("op")
        if op == "shutdown":
            self._shutdown_event.set()
            return {"stopping": True}
        if op == "ingest" and self._shutdown_event.is_set():
            raise ServiceStoppedError("server is shutting down")
        return await dispatch_service_op(self.service, message)


async def run_server(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 0,
    restore: str | None = None,
    ready: Callable[[int], None] | None = None,
    label: str = "repro-serve",
) -> int:
    """Boot a server, serve until shutdown, return a process exit code.

    Installs SIGTERM/SIGINT handlers for graceful drain-on-shutdown (on
    platforms without ``loop.add_signal_handler`` the handlers are skipped
    and only the protocol-level ``shutdown`` op stops the server).

    When ``config.shards`` is set (or ``restore`` names a shard manifest)
    the served state is a :class:`~repro.service.router.ShardRouter` fronting
    that many worker processes instead of one in-process service.

    Args:
        config: Service configuration (ignored for sketch state when
            ``restore`` is given: the snapshot's own configuration wins,
            with the operational knobs — ``snapshot_path``, periods,
            ``batch_size``, ``queue_chunks`` — taken from ``config``).
        host: Interface to bind.
        port: Port to bind (0 picks a free one).
        restore: Path of a snapshot (or shard manifest) to restore from.
        ready: Callback invoked with the bound port once serving.
        label: Prefix of the stdout banner lines.  Shard workers use a
            distinct per-shard label so anything parsing the parent's
            ``repro-serve: listening on`` line never matches a worker's.
    """
    service: ServingState
    restore_kind: str | None = None
    if restore is not None:
        if config.pool:
            raise ConfigurationError(
                "--restore does not apply to a pooled server: the pool directory "
                "(catalog + per-tenant snapshots) is the durable state"
            )
        # Boot-time one-shot read, before any listener exists: nothing else
        # runs on this loop yet, so there is no ingest/query to stall.
        with open(restore, "r", encoding="utf-8") as handle:  # reprolint: disable=RL002
            restore_kind = json.load(handle).get("kind")
    if config.shards is not None or restore_kind == "shard_manifest":
        from .router import ShardRouter

        if restore is not None:
            service = ShardRouter.from_manifest(restore, overrides=config)
        else:
            service = ShardRouter(config)
    elif config.pool:
        from .pool import TenantPool

        service = TenantPool(config)
    elif restore is not None:
        service = SketchService.from_snapshot(restore)
        # Operational knobs follow the *current* invocation, not the one
        # that wrote the snapshot; only the sketch-state parameters (mode,
        # epsilon, window, backend, ...) are pinned by the snapshot.
        service.config.snapshot_path = config.snapshot_path
        service.config.snapshot_every = config.snapshot_every
        service.config.expire_every = config.expire_every
        service.config.batch_size = config.batch_size
        service.config.queue_chunks = config.queue_chunks
        service.config.journal_dir = config.journal_dir
        service.config.journal_fsync = config.journal_fsync
        service.config.dedup_clients = config.dedup_clients
        if config.journal_dir is not None:
            from .journal import IngestJournal

            service._journal = IngestJournal(
                config.journal_dir, fsync_each=config.journal_fsync
            )
    else:
        service = SketchService(config)
    # Boot-time fault injection (chaos harness): a spec in REPRO_FAILPOINTS
    # arms this process before it serves its first request.
    failpoints.load_from_env()
    server = SketchServer(service, host=host, port=port)
    await server.start()

    loop = asyncio.get_running_loop()
    installed_signals = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, server._shutdown_event.set)
            installed_signals.append(signum)
    try:
        print(
            "%s: listening on %s:%d (mode=%s, backend=%s%s%s%s)"
            % (
                label,
                server.host,
                server.port,
                service.config.mode,
                service.config.backend,
                ", shards=%d" % service.config.shards
                if service.config.shards is not None
                else "",
                ", pool" if service.config.pool else "",
                ", restored" if restore is not None else "",
            ),
            flush=True,
        )
        if ready is not None:
            ready(server.port)
        await server.serve_until_shutdown()
    finally:
        for signum in installed_signals:
            loop.remove_signal_handler(signum)
    print(
        "%s: drained (%d records ingested, %d requests); %s"
        % (
            label,
            service.records_ingested,
            server.requests_served,
            "final snapshot at %s" % service.last_snapshot_path
            if service.last_snapshot_path
            else "no snapshot configured",
        ),
        flush=True,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - convenience entry
    sys.exit(asyncio.run(run_server(ServiceConfig())))
