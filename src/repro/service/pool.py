"""Multi-tenant sketch pool: a tenant catalog plus a memory governor.

One :class:`TenantPool` hosts many independent sketches ("tenants") inside
one serving process.  Each tenant is a full
:class:`~repro.service.core.SketchService` — its own mode, error budgets,
window model and backend — created from the pool's default configuration
plus per-tenant overrides, and addressed by a ``tenant`` id on every
protocol operation.

Two pieces make it scale past RAM:

* **The catalog** (:class:`TenantCatalog`) is a SQLite table mapping tenant
  id to its full configuration and lifecycle metadata (created/last-touched
  stamps, residency, eviction snapshot path, ingest watermarks).  The
  catalog *is* the pool's manifest: a restarted process with the same pool
  directory lists exactly the tenants it had, and restores each lazily on
  first touch.
* **The memory governor** tracks resident tenants' ``memory_bytes()`` (the
  PR 4 accounting APIs) against ``memory_budget_bytes``.  When the
  accounted total exceeds the budget, cold tenants — least recently touched
  first — are drained and evicted to atomic per-tenant snapshots (the PR 5
  format, unchanged), and restored byte-identically on their next touch.
  The hottest tenant is never evicted: after a sweep either the accounted
  total fits the budget or exactly one tenant remains resident.

Concurrency: every operation on a tenant serializes through that tenant's
``asyncio.Lock``.  That is what makes eviction safe under load — a query
racing an eviction either runs before the drain-and-snapshot or waits and
triggers a restore; it never observes half a tenant.
"""

from __future__ import annotations
import contextlib

import asyncio
import functools
import json
import os
import re
import sqlite3
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Hashable, Sequence
from typing import Any, TypeVar

from ..core.errors import ConfigurationError
from .config import ServiceConfig
from .core import SketchService
from .errors import (
    InvalidParameterError,
    ServiceError,
    ServiceStoppedError,
    TenantEvictedError,
    TenantExistsError,
    TenantNotFoundError,
    TenantRequiredError,
)

__all__ = ["TenantCatalog", "TenantPool", "TENANT_ID_PATTERN"]

_T = TypeVar("_T")

#: Valid tenant ids: path-safe (snapshots are named after them), 1-128 chars.
TENANT_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.:-]{0,127}$")

#: Configuration keys a tenant may override at ``tenant_create`` — the
#: sketch-state parameters.  Operational knobs (batch size, queue bound,
#: persistence, sharding) belong to the pool, not to tenants.
TENANT_CONFIG_KEYS = frozenset(
    [
        "mode",
        "epsilon",
        "delta",
        "window",
        "model",
        "counter_type",
        "backend",
        "universe_bits",
        "sites",
        "period",
        "max_arrivals",
        "seed",
    ]
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tenants (
    tenant TEXT PRIMARY KEY,
    config TEXT NOT NULL,
    created_at REAL NOT NULL,
    last_touched REAL NOT NULL,
    touch_seq INTEGER NOT NULL DEFAULT 0,
    resident INTEGER NOT NULL DEFAULT 0,
    snapshot_path TEXT,
    records_ingested INTEGER NOT NULL DEFAULT 0,
    applied_clock REAL
)
"""


class TenantCatalog:
    """SQLite-backed tenant catalog (id -> config + lifecycle metadata).

    Single-writer by construction: only the pool that owns the directory
    touches it, so plain autocommit-per-statement durability is enough.  On
    open, residency flags left behind by a crash are cleared — those
    tenants' last eviction snapshots (if any) are their durable state,
    exactly like a tenant evicted before the crash.

    Threading: the synchronous methods are the catalog's surface (scripts
    and tests call them directly), but the pool's async paths route every
    one of them through :meth:`call`, which runs the statement on the
    catalog's own single worker thread — a SQLite commit is an fsync, and
    an fsync on the event loop stalls ingest, queries and heartbeats
    together.  One worker thread keeps the single-writer ordering.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # check_same_thread=False because statements run on the catalog's
        # worker thread via call() but open/close may happen on the caller's;
        # the single-worker executor serializes all access.
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        self._connection.execute(_SCHEMA)
        # Crash recovery: anything marked resident belongs to a dead process.
        self._connection.execute("UPDATE tenants SET resident = 0 WHERE resident != 0")
        self._connection.commit()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="tenant-catalog"
        )

    async def call(self, method: Callable[..., _T], /, *args: Any) -> _T:
        """Run one synchronous catalog method off the event loop.

        ``await catalog.call(catalog.touch, tenant, now, seq)`` executes the
        statement on the catalog's single worker thread, so the commit's
        fsync never runs on the loop.  This is the only way the pool's async
        paths are allowed to reach the catalog.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, functools.partial(method, *args))

    def close(self) -> None:
        self._connection.close()
        # wait=False: close() itself may be running on the worker thread
        # (via call()), and a thread cannot join itself.
        self._executor.shutdown(wait=False)

    def create(self, tenant: str, config_payload: dict[str, Any], now: float, seq: int) -> None:
        try:
            self._connection.execute(
                "INSERT INTO tenants (tenant, config, created_at, last_touched, touch_seq, "
                "resident) VALUES (?, ?, ?, ?, ?, 1)",
                (tenant, json.dumps(config_payload, sort_keys=True), now, now, seq),
            )
        except sqlite3.IntegrityError:
            raise TenantExistsError("tenant %r already exists" % (tenant,)) from None
        self._connection.commit()

    def get(self, tenant: str) -> sqlite3.Row | None:
        cursor = self._connection.execute("SELECT * FROM tenants WHERE tenant = ?", (tenant,))
        return cursor.fetchone()

    def delete(self, tenant: str) -> bool:
        cursor = self._connection.execute("DELETE FROM tenants WHERE tenant = ?", (tenant,))
        self._connection.commit()
        return cursor.rowcount > 0

    def rows(self) -> list[sqlite3.Row]:
        cursor = self._connection.execute("SELECT * FROM tenants ORDER BY tenant")
        return list(cursor.fetchall())

    def count(self) -> int:
        cursor = self._connection.execute("SELECT COUNT(*) FROM tenants")
        return int(cursor.fetchone()[0])

    def touch(self, tenant: str, now: float, seq: int) -> None:
        self._connection.execute(
            "UPDATE tenants SET last_touched = ?, touch_seq = ? WHERE tenant = ?",
            (now, seq, tenant),
        )
        self._connection.commit()

    def mark_resident(self, tenant: str) -> None:
        self._connection.execute(
            "UPDATE tenants SET resident = 1 WHERE tenant = ?", (tenant,)
        )
        self._connection.commit()

    def mark_evicted(
        self,
        tenant: str,
        snapshot_path: str,
        records_ingested: int,
        applied_clock: float | None,
    ) -> None:
        self._connection.execute(
            "UPDATE tenants SET resident = 0, snapshot_path = ?, records_ingested = ?, "
            "applied_clock = ? WHERE tenant = ?",
            (snapshot_path, records_ingested, applied_clock, tenant),
        )
        self._connection.commit()

    def max_touch_seq(self) -> int:
        cursor = self._connection.execute("SELECT COALESCE(MAX(touch_seq), 0) FROM tenants")
        return int(cursor.fetchone()[0])


class TenantPool:
    """Many tenant sketch services behind one serving surface.

    Duck-types the surface :func:`~repro.service.server.dispatch_service_op`
    serves (``supports_tenants`` marks the tenant-namespaced extension), so
    a :class:`~repro.service.server.SketchServer` — or a pooled shard worker
    — fronts a pool exactly like a single service.

    Args:
        config: Pool configuration; ``pool=True`` and ``pool_dir`` are
            required, ``memory_budget_bytes`` arms the governor, and the
            sketch parameters become the default tenant configuration.
    """

    supports_tenants = True

    def __init__(self, config: ServiceConfig) -> None:
        if not config.pool or config.pool_dir is None:
            raise ConfigurationError("TenantPool requires pool=True and pool_dir")
        self.config = config
        self.pool_dir = config.pool_dir
        os.makedirs(os.path.join(self.pool_dir, "tenants"), exist_ok=True)
        self.catalog = TenantCatalog(os.path.join(self.pool_dir, "catalog.sqlite"))
        self.records_ingested = 0
        self.tenants_created = 0
        self.evictions = 0
        self.restores = 0
        self.background_errors = 0
        self.last_snapshot_path: str | None = None
        self._resident: dict[str, SketchService] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._touch_seq = self.catalog.max_touch_seq()
        # Cached catalog cardinality so stats()/info()/__repr__ stay
        # synchronous without a SQLite query on the event loop; maintained
        # on create/delete, seeded from the durable catalog here.
        self._tenant_count = self.catalog.count()
        self._started = False
        self._stopping = False
        self._started_monotonic = time.monotonic()
        self._sweep_task: asyncio.Task[None] | None = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Open the pool for requests and start the background sweep."""
        if self._started:
            raise ServiceError("pool already started")
        self._started = True
        self._stopping = False
        self._started_monotonic = time.monotonic()
        if self.config.expire_every is not None:
            self._sweep_task = asyncio.create_task(self._sweep_loop(), name="pool-sweep")

    async def stop(self, drain: bool = True) -> str | None:
        """Stop the pool; with ``drain`` every resident tenant is evicted
        (drained + snapshotted), making the catalog + snapshots a complete
        restart manifest.  Returns the pool directory when drained."""
        self._stopping = True
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweep_task
            self._sweep_task = None
        if drain:
            for tenant in list(self._resident):
                await self._evict(tenant)
            self.last_snapshot_path = self.pool_dir
        else:
            for tenant, service in list(self._resident.items()):
                await service.stop(drain=False)
                del self._resident[tenant]
        await self.catalog.call(self.catalog.close)
        self._started = False
        return self.last_snapshot_path

    async def __aenter__(self) -> TenantPool:
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop(drain=True)

    # ------------------------------------------------------------ tenant ids
    def _lock_for(self, tenant: str) -> asyncio.Lock:
        lock = self._locks.get(tenant)
        if lock is None:
            lock = self._locks[tenant] = asyncio.Lock()
        return lock

    @staticmethod
    def _validate_tenant_id(tenant: Any) -> str:
        if not isinstance(tenant, str) or not TENANT_ID_PATTERN.match(tenant):
            raise InvalidParameterError(
                "tenant ids must match %s, got %r" % (TENANT_ID_PATTERN.pattern, tenant)
            )
        return tenant

    @staticmethod
    def _require_tenant(tenant: str | None) -> str:
        if tenant is None:
            raise TenantRequiredError("this operation requires a 'tenant' on a pooled server")
        return TenantPool._validate_tenant_id(tenant)

    def tenant_config(self, overrides: dict[str, Any]) -> ServiceConfig:
        """Default tenant configuration with per-tenant overrides applied.

        Only sketch-state parameters (:data:`TENANT_CONFIG_KEYS`) may be
        overridden; operational knobs stay pool-wide.  Validation happens in
        :class:`~repro.service.config.ServiceConfig` itself.
        """
        if not isinstance(overrides, dict):
            raise InvalidParameterError("tenant config must be an object")
        payload = self.config.to_dict()
        # Tenants are plain single-process services: the pool owns sharding,
        # persistence and budgets; the pool's sweep loop owns expiry.
        payload.update(
            shards=None,
            pool=False,
            pool_dir=None,
            memory_budget_bytes=None,
            snapshot_path=None,
            snapshot_every=None,
            expire_every=None,
            journal_dir=None,
            journal_fsync=False,
            supervise=False,
        )
        for key, value in overrides.items():
            if key not in TENANT_CONFIG_KEYS:
                raise InvalidParameterError(
                    "unknown tenant config key %r (tenants may set: %s)"
                    % (key, ", ".join(sorted(TENANT_CONFIG_KEYS)))
                )
            payload[key] = value
        return ServiceConfig.from_dict(payload)

    def _snapshot_path_for(self, tenant: str) -> str:
        return os.path.join(self.pool_dir, "tenants", "%s.snapshot.json" % tenant)

    async def _touch(self, tenant: str) -> None:
        self._touch_seq += 1
        await self.catalog.call(self.catalog.touch, tenant, time.time(), self._touch_seq)

    # ------------------------------------------------------- residency + LRU
    async def _acquire(self, tenant: str) -> SketchService:
        """Resident service for one tenant, restoring it if evicted.

        Caller must hold the tenant's lock.  Raises
        :class:`TenantNotFoundError` for unknown tenants and
        :class:`TenantEvictedError` when the eviction snapshot is missing or
        unreadable (the catalog entry survives, so the operator can delete
        or re-create the tenant explicitly).
        """
        if self._stopping or not self._started:
            raise ServiceStoppedError("pool is not accepting requests")
        service = self._resident.get(tenant)
        if service is None:
            row = await self.catalog.call(self.catalog.get, tenant)
            if row is None:
                raise TenantNotFoundError("unknown tenant %r" % (tenant,))
            service = await self._restore(tenant, row)
            self._resident[tenant] = service
            await self.catalog.call(self.catalog.mark_resident, tenant)
        await self._touch(tenant)
        return service

    async def _restore(self, tenant: str, row: sqlite3.Row) -> SketchService:
        config = ServiceConfig.from_dict(json.loads(row["config"]))
        snapshot_path = row["snapshot_path"]
        if snapshot_path is None:
            # Never evicted (fresh tenant, or acknowledged-but-unsnapshotted
            # work lost to a crash): start from the configured empty state.
            service = SketchService(config)
        else:
            try:
                service = SketchService.from_snapshot(snapshot_path)
            except FileNotFoundError:
                raise TenantEvictedError(
                    "tenant %r was evicted but its snapshot %s is missing"
                    % (tenant, snapshot_path)
                ) from None
            except (ConfigurationError, KeyError, ValueError, TypeError, OSError) as exc:
                raise TenantEvictedError(
                    "tenant %r was evicted but its snapshot %s is unreadable: %s"
                    % (tenant, snapshot_path, exc)
                ) from exc
            self.restores += 1
        await service.start()
        return service

    async def _evict(self, tenant: str) -> bool:
        """Drain one tenant to its snapshot and drop it from residency."""
        async with self._lock_for(tenant):
            service = self._resident.get(tenant)
            if service is None:
                return False
            path = self._snapshot_path_for(tenant)
            # stop(drain=True) empties the ingest queue; the tenant config
            # carries no snapshot_path, so the final write below is the only
            # one — through the same atomic snapshot format as PR 5.  The
            # write and the catalog commit both run off-loop: eviction of a
            # cold tenant must not stall the hot ones.
            await service.stop(drain=True)
            await service.snapshot_async(path)
            await self.catalog.call(
                self.catalog.mark_evicted,
                tenant, path, service.records_ingested, service.applied_clock,
            )
            del self._resident[tenant]
            self.evictions += 1
            return True

    def accounted_bytes(self) -> int:
        """Resident memory accounted against the budget (sum of tenants')."""
        return sum(self._service_memory(service) for service in self._resident.values())

    @staticmethod
    def _service_memory(service: SketchService) -> int:
        stats = service.stats()
        return int(stats["memory_bytes"])

    async def _eviction_order(self) -> list[str]:
        """Resident tenants, coldest (smallest touch_seq) first."""
        sequence: dict[str, int] = {}
        for row in await self.catalog.call(self.catalog.rows):
            sequence[row["tenant"]] = int(row["touch_seq"])
        return sorted(self._resident, key=lambda tenant: sequence.get(tenant, 0))

    async def _enforce_budget(self) -> list[str]:
        """Evict cold tenants until the accounted total fits the budget.

        Never evicts the last (hottest) resident: a single tenant larger
        than the whole budget stays resident — eviction would just thrash
        restore/evict on every touch without freeing anything durable.
        """
        budget = self.config.memory_budget_bytes
        if budget is None:
            return []
        evicted: list[str] = []
        while self.accounted_bytes() > budget and len(self._resident) > 1:
            for tenant in await self._eviction_order():
                if await self._evict(tenant):
                    evicted.append(tenant)
                    break
            else:  # pragma: no cover - defensive: nothing evictable
                break
        return evicted

    async def sweep(self) -> dict[str, Any]:
        """Expire out-of-window state and enforce the budget, immediately."""
        for tenant in list(self._resident):
            async with self._lock_for(tenant):
                service = self._resident.get(tenant)
                if service is not None:
                    service.expire_now()
        evicted = await self._enforce_budget()
        return {
            "accounted_bytes": self.accounted_bytes(),
            "memory_budget_bytes": self.config.memory_budget_bytes,
            "resident": len(self._resident),
            "evicted": evicted,
        }

    async def _sweep_loop(self) -> None:
        assert self.config.expire_every is not None
        while True:
            await asyncio.sleep(self.config.expire_every)
            try:
                await self.sweep()
            except Exception as exc:
                self.background_errors += 1
                print(
                    "tenant-pool: background sweep failed (%s: %s); will retry"
                    % (type(exc).__name__, exc),
                    file=sys.stderr,
                    flush=True,
                )

    # ------------------------------------------------------ tenant lifecycle
    async def tenant_create(
        self, tenant: str, overrides: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Create a tenant (resident immediately); returns its description."""
        tenant = self._require_tenant(tenant)
        if self._stopping or not self._started:
            raise ServiceStoppedError("pool is not accepting requests")
        config = self.tenant_config(overrides or {})
        async with self._lock_for(tenant):
            existing = tenant in self._resident or (
                await self.catalog.call(self.catalog.get, tenant) is not None
            )
            if existing:
                raise TenantExistsError("tenant %r already exists" % (tenant,))
            self._touch_seq += 1
            await self.catalog.call(
                self.catalog.create, tenant, config.to_dict(), time.time(), self._touch_seq
            )
            service = SketchService(config)
            await service.start()
            self._resident[tenant] = service
            self.tenants_created += 1
            self._tenant_count += 1
        await self._enforce_budget()
        return await self.tenant_stats(tenant)

    async def tenant_delete(self, tenant: str) -> dict[str, Any]:
        """Delete a tenant: stop it, drop its snapshot and catalog row."""
        tenant = self._require_tenant(tenant)
        async with self._lock_for(tenant):
            service = self._resident.pop(tenant, None)
            if service is not None:
                await service.stop(drain=False)
            existed = await self.catalog.call(self.catalog.delete, tenant)
            if not existed:
                raise TenantNotFoundError("unknown tenant %r" % (tenant,))
            self._tenant_count -= 1
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._snapshot_path_for(tenant))
        self._locks.pop(tenant, None)
        return {"deleted": tenant}

    async def tenant_list(self) -> list[dict[str, Any]]:
        """Describe every tenant in the catalog (resident or evicted)."""
        listing = []
        for row in await self.catalog.call(self.catalog.rows):
            listing.append(self._describe_row(row))
        return listing

    def _describe_row(self, row: sqlite3.Row) -> dict[str, Any]:
        tenant = row["tenant"]
        config = json.loads(row["config"])
        service = self._resident.get(tenant)
        description: dict[str, Any] = {
            "tenant": tenant,
            "resident": service is not None,
            "mode": config.get("mode"),
            "backend": config.get("backend"),
            "created_at": row["created_at"],
            "last_touched": row["last_touched"],
            "snapshot_path": row["snapshot_path"],
            "records_ingested": (
                service.records_ingested if service is not None else int(row["records_ingested"])
            ),
            "applied_clock": (
                service.applied_clock if service is not None else row["applied_clock"]
            ),
            "memory_bytes": self._service_memory(service) if service is not None else None,
        }
        return description

    async def tenant_stats(self, tenant: str) -> dict[str, Any]:
        """Live counters of one tenant (restores it when evicted)."""
        tenant = self._require_tenant(tenant)
        async with self._lock_for(tenant):
            service = await self._acquire(tenant)
            stats = service.stats()
        stats["tenant"] = tenant
        stats["resident"] = True
        return stats

    # ----------------------------------------------------- namespaced ops
    async def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
        site: int = 0,
        tenant: str | None = None,
    ) -> int:
        """Validate and enqueue one chunk into one tenant's service."""
        name = self._require_tenant(tenant)
        async with self._lock_for(name):
            service = await self._acquire(name)
            accepted = await service.ingest(keys, clocks, values, site=site)
        self.records_ingested += accepted
        await self._enforce_budget()
        return accepted

    async def drain(self, tenant: str | None = None) -> dict[str, Any]:
        """Apply-barrier for one tenant, or for every resident tenant."""
        if tenant is None:
            clocks: list[Any] = []
            for name in list(self._resident):
                async with self._lock_for(name):
                    service = self._resident.get(name)
                    if service is not None:
                        await service.drain()
                        clocks.append(service.applied_clock)
            finite = [clock for clock in clocks if clock is not None]
            return {"applied_clock": max(finite) if finite else None}
        name = self._require_tenant(tenant)
        async with self._lock_for(name):
            service = await self._acquire(name)
            await service.drain()
            return {"applied_clock": service.applied_clock}

    async def expire_now(self, tenant: str | None = None) -> dict[str, Any]:
        """Expire out-of-window state in one tenant (or all resident)."""
        if tenant is None:
            result = await self.sweep()
            return {"applied_clock": None, "swept": result}
        name = self._require_tenant(tenant)
        async with self._lock_for(name):
            service = await self._acquire(name)
            service.expire_now()
            return {"applied_clock": service.applied_clock}

    async def snapshot_async(
        self, path: str | None = None, tenant: str | None = None
    ) -> str:
        """Snapshot one tenant (staying resident), or every resident tenant.

        With a tenant: writes that tenant's eviction-format snapshot (to
        ``path`` if given) and returns its path.  Without: snapshots every
        resident tenant to its eviction path and returns the pool directory.
        """
        if tenant is None:
            for name in list(self._resident):
                await self.snapshot_async(tenant=name)
            self.last_snapshot_path = self.pool_dir
            return self.pool_dir
        name = self._require_tenant(tenant)
        async with self._lock_for(name):
            service = await self._acquire(name)
            destination = path if path is not None else self._snapshot_path_for(name)
            await service.drain()
            written = await service.snapshot_async(destination)
            await self.catalog.call(  # records the durable watermarks ...
                self.catalog.mark_evicted,
                name, written, service.records_ingested, service.applied_clock,
            )
            # ... without leaving residency
            await self.catalog.call(self.catalog.mark_resident, name)
        self.last_snapshot_path = written
        return written

    async def query(self, op: str, message: dict[str, Any]) -> Any:
        """Answer one query op against the tenant named in the message."""
        name = self._require_tenant(message.get("tenant"))
        async with self._lock_for(name):
            service = await self._acquire(name)
            return service.query(op, message)

    # ------------------------------------------------------------------ info
    @property
    def applied_clock(self) -> float | None:
        clocks = [service.applied_clock for service in self._resident.values()]
        finite = [clock for clock in clocks if clock is not None]
        return max(finite) if finite else None

    def info(self) -> dict[str, Any]:
        from .protocol import PROTOCOL_VERSION

        info = self.config.describe()
        info["protocol_version"] = PROTOCOL_VERSION
        info["pool"] = True
        info["tenants"] = self._tenant_count
        return info

    def stats(self) -> dict[str, Any]:
        return {
            "mode": self.config.mode,
            "backend": self.config.backend,
            "pool": True,
            "tenants_total": self._tenant_count,
            "tenants_resident": len(self._resident),
            "tenants_created": self.tenants_created,
            "evictions": self.evictions,
            "restores": self.restores,
            "accounted_memory_bytes": self.accounted_bytes(),
            "memory_budget_bytes": self.config.memory_budget_bytes,
            "records_ingested": self.records_ingested,
            "background_errors": self.background_errors,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "draining": self._stopping,
        }

    def __repr__(self) -> str:
        return "TenantPool(tenants=%d, resident=%d, ingested=%d)" % (
            self._tenant_count if self._started else -1,
            len(self._resident),
            self.records_ingested,
        )
