"""The live sketch service core: one sketch, one ingest queue, many queries.

:class:`SketchService` owns the live sketch state of one serving process and
everything that mutates it:

* **Ingest** goes through a bounded :class:`asyncio.Queue` of column chunks.
  A single consumer task coalesces queued chunks into micro-batches of at
  most ``batch_size`` arrivals and applies them with the batched fast path
  (``add_many`` / the coordinator's batched observe), yielding to the event
  loop between batches.  A full queue suspends producers — that is the
  backpressure path, and the TCP server propagates it to the socket by simply
  not reading the next request line until ``ingest`` returns.
* **Queries** are answered synchronously from the live state.  The event
  loop is single-threaded, so a query never observes a half-applied batch:
  it runs either before or after an ``add_many`` call, both of which are
  consistent sketch states.  Answers therefore trail acknowledged ingest by
  at most the queue content (use ``drain`` as a read-your-writes barrier).
* **Background tasks** run the periodic ``expire`` sweep (so quiet cells
  shed out-of-window state without waiting for their next arrival) and
  periodic snapshots.  In multisite mode, aggregation rounds fire inside the
  ingest path itself, at exactly the stream clocks where
  :class:`~repro.distributed.continuous.PeriodicAggregationCoordinator`
  would fire them.

Ordering contract: arrival clocks must be globally non-decreasing across all
producers (the sliding-window structures require in-order streams).  The
service validates each chunk against its high-water mark *before* enqueueing
and rejects violations at acknowledgement time, so the apply path never
fails mid-batch.
"""

from __future__ import annotations
import contextlib

import asyncio
import math
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Callable, Hashable, Sequence
from typing import Any

import numpy as np

from ..core.config import ECMConfig
from ..core.ecm_sketch import ECMSketch
from ..core.errors import EmptyStructureError
from ..distributed.continuous import PeriodicAggregationCoordinator
from ..queries.hierarchical import HierarchicalECMSketch
from ..streams.stream import StreamRecord
from .config import ServiceConfig
from .errors import (
    ClockRegressionError,
    IngestRejectedError,
    InvalidParameterError,
    ModeMismatchError,
    ServiceError,
    ServiceStoppedError,
    UnknownOperationError,
)
from .journal import IngestJournal, JournalRecord

__all__ = [
    "ServiceError",
    "IngestRejectedError",
    "ServiceStoppedError",
    "SketchService",
    "validate_clock_column",
    "validate_values_column",
    "validate_keys_for_mode",
]

ServiceState = ECMSketch | HierarchicalECMSketch | PeriodicAggregationCoordinator


#: Chunk size from which clock validation switches to the vectorized NumPy
#: pass; below it, per-element checks are cheaper (and give the precise
#: offending value in the error message).
_VECTOR_VALIDATE_CUTOFF = 64


def validate_clock_column(clocks: Sequence[float], previous: float | None) -> None:
    """Reject non-numeric, non-finite or out-of-order clocks, pre-ack.

    Finiteness matters for more than hygiene: every comparison against NaN is
    False, so one NaN clock would disable the ordering high-water mark for
    the rest of the stream.  Large chunks validate through one vectorized
    pass — this runs per arrival on the ack hot path.  Shared by the
    single-process service (global high-water mark) and the shard router
    (per-shard high-water marks).
    """
    if len(clocks) >= _VECTOR_VALIDATE_CUTOFF:
        array = np.asarray(clocks)
        if (
            array.ndim == 1
            and array.dtype != np.bool_
            and (np.issubdtype(array.dtype, np.floating)
                 or np.issubdtype(array.dtype, np.integer))
        ):
            if not np.isfinite(array).all():
                raise IngestRejectedError("clocks must be finite")
            if (np.diff(array) < 0).any() or (
                previous is not None and float(array[0]) < previous
            ):
                raise ClockRegressionError(
                    "out-of-order clocks (high-water mark %r); arrival clocks "
                    "must be non-decreasing" % (previous,)
                )
            return
        # Mixed/object dtype: fall through to the scalar walk, which names
        # the offending element.
    for clock in clocks:
        if not isinstance(clock, (int, float)) or isinstance(clock, bool):
            raise IngestRejectedError("clocks must be numbers, got %r" % (clock,))
        if not math.isfinite(clock):
            raise IngestRejectedError("clocks must be finite, got %r" % (clock,))
        if previous is not None and clock < previous:
            raise ClockRegressionError(
                "out-of-order clock %r (high-water mark %r); arrival clocks "
                "must be non-decreasing" % (clock, previous)
            )
        previous = clock


def validate_values_column(values: Sequence[int]) -> None:
    """Reject anything but non-negative integers in a values column."""
    for value in values:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise IngestRejectedError(
                "values must be non-negative integers, got %r" % (value,)
            )


def validate_keys_for_mode(keys: Sequence[Hashable], mode: str, universe_bits: int) -> None:
    """Reject keys the given service mode cannot ingest, pre-ack."""
    if mode == "hierarchical":
        universe = 1 << universe_bits
        for key in keys:
            if not isinstance(key, int) or isinstance(key, bool) or not (0 <= key < universe):
                raise IngestRejectedError(
                    "hierarchical keys must be integers in [0, %d), got %r" % (universe, key)
                )
    else:
        # Flat/multisite keys arrive as arbitrary JSON values; an unhashable
        # one (list, dict) would otherwise blow up inside add_many *after*
        # the chunk was acknowledged, killing the consumer task.  Validation
        # happens here, before the ack.
        for key in keys:
            try:
                # Hashability probe only — the salted value is discarded, so
                # process-randomized hashing cannot leak into sketch state.
                hash(key)  # reprolint: disable=RL001 -- probe, not partitioning
            except TypeError:
                raise IngestRejectedError(
                    "keys must be hashable scalars, got %s" % (type(key).__name__,)
                ) from None


@dataclass
class _IngestChunk:
    """One validated, not-yet-applied column chunk."""

    site: int
    keys: list[Hashable]
    clocks: list[float]
    values: list[int] | None
    # Retry identity of the producing client, when it sent one: the highest
    # applied seq per client rides in snapshots so a reconnect-and-resend
    # after recovery still dedups exactly-once.
    client_id: str | None = None
    seq: int | None = None
    # Position of this chunk in the write-ahead journal (None: not journaled).
    journal_seq: int | None = None

    def __len__(self) -> int:
        return len(self.keys)


class SketchService:
    """Concurrent ingest/query service over one live sketch state.

    Args:
        config: Full service parameterisation.
        state: Pre-built sketch state (used by snapshot restore); when
            ``None`` a fresh state is built from ``config``.
        records_ingested: Ingest counter carried over from a snapshot.
        applied_clock: Stream clock carried over from a snapshot.
        applied_seqs: Per-client highest *applied* ingest seq, carried over
            from a snapshot, so retry dedup survives a crash.
        journal_seq: Journal position of the snapshot this service was
            restored from; boot replay skips journal records at or below it.
    """

    def __init__(
        self,
        config: ServiceConfig,
        state: ServiceState | None = None,
        records_ingested: int = 0,
        applied_clock: float | None = None,
        applied_seqs: dict[str, int] | None = None,
        journal_seq: int = 0,
    ) -> None:
        self.config = config
        self.state: ServiceState = state if state is not None else self._build_state(config)
        self.records_ingested = records_ingested
        self.ingest_batches = 0
        self.ingest_apply_errors = 0
        self.background_errors = 0
        self.snapshots_written = 0
        self.duplicate_chunks = 0
        self.journal_errors = 0
        self.last_snapshot_path: str | None = None
        self._applied_clock: float | None = applied_clock
        self._submitted_clock: float | None = applied_clock
        self._pending_arrivals = 0
        self._started_monotonic = time.monotonic()
        self._snapshot_lock = asyncio.Lock()
        self._queue: asyncio.Queue[_IngestChunk] | None = None
        self._ingest_task: asyncio.Task[None] | None = None
        self._background_tasks: list[asyncio.Task[None]] = []
        self._stopping = False
        # Exactly-once dedup state.  `_applied_seqs` only advances when a
        # chunk is applied (it is what snapshots persist); `_acked_seqs`
        # advances at ack time and is what the ingest path checks, so a
        # retry of a still-queued chunk dedups too.
        self._applied_seqs: dict[str, int] = dict(applied_seqs or {})
        self._acked_seqs: dict[str, int] = dict(self._applied_seqs)
        self._applied_journal_seq = journal_seq
        self._journal: IngestJournal | None = None
        if config.journal_dir is not None:
            self._journal = IngestJournal(config.journal_dir, fsync_each=config.journal_fsync)
        # Single-thread executor: journal appends must hit the file in ack
        # order, and a one-worker pool is a FIFO queue (the same sanctioned
        # blocking-I/O escape the tenant catalog uses).
        self._journal_executor: ThreadPoolExecutor | None = None

    # -------------------------------------------------------------- building
    @staticmethod
    def _build_state(config: ServiceConfig) -> ServiceState:
        ecm_config = ECMConfig.for_point_queries(
            epsilon=config.epsilon,
            delta=config.delta,
            window=config.window,
            model=config.model,
            counter_type=config.counter_type,
            max_arrivals=config.max_arrivals,
            seed=config.seed,
            backend=config.backend,
        )
        if config.mode == "flat":
            return ECMSketch(ecm_config)
        if config.mode == "hierarchical":
            return HierarchicalECMSketch(
                universe_bits=config.universe_bits,
                epsilon=config.epsilon,
                delta=config.delta,
                window=config.window,
                model=config.model,
                counter_type=config.counter_type,
                max_arrivals=config.max_arrivals,
                seed=config.seed,
                backend=config.backend,
            )
        return PeriodicAggregationCoordinator(
            num_nodes=config.sites, config=ecm_config, period=config.period
        )

    @classmethod
    def from_snapshot(cls, path: str | os.PathLike) -> SketchService:
        """Rebuild a service from a snapshot written by :meth:`snapshot_now`."""
        from .snapshot import load_snapshot, service_state_from_snapshot

        payload = load_snapshot(path)
        return service_state_from_snapshot(payload)

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Create the ingest queue and spawn the consumer and background tasks."""
        if self._queue is not None:
            raise ServiceError("service already started")
        self._queue = asyncio.Queue(maxsize=self.config.queue_chunks)
        self._stopping = False
        if self._journal is not None:
            # Recover before accepting ingest: replay the journal tail the
            # restored snapshot does not contain, then continue appending
            # where the intact journal ends.
            self._journal_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="ingest-journal"
            )
            loop = asyncio.get_running_loop()
            records = await loop.run_in_executor(
                self._journal_executor, self._journal.recover, self._applied_journal_seq
            )
            self._replay_journal_records(records)
            await loop.run_in_executor(self._journal_executor, self._journal.open_for_append)
        self._ingest_task = asyncio.create_task(self._ingest_loop(), name="sketch-ingest")
        if self.config.expire_every is not None:
            self._background_tasks.append(
                asyncio.create_task(self._expire_loop(), name="sketch-expire")
            )
        if self.config.snapshot_every is not None:
            self._background_tasks.append(
                asyncio.create_task(self._snapshot_loop(), name="sketch-snapshot")
            )

    async def stop(self, drain: bool = True) -> str | None:
        """Stop the service; optionally drain the queue and snapshot first.

        Returns:
            The path of the final snapshot, when one was written.
        """
        self._stopping = True
        final_snapshot: str | None = None
        if drain and self._queue is not None:
            await self._queue.join()
        if self._ingest_task is not None:
            self._ingest_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ingest_task
            self._ingest_task = None
        for task in self._background_tasks:
            task.cancel()
        for task in self._background_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception:
                # Already counted/reported by _background_failure (or the
                # task died before the guards existed); a stale background
                # error must not abort the shutdown path below — the final
                # drain snapshot still has to happen.
                pass
        self._background_tasks = []
        if drain and self.config.snapshot_path is not None:
            final_snapshot = self.snapshot_now()
        if self._journal is not None and self._journal_executor is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._journal_executor, self._journal.close
            )
            self._journal_executor.shutdown(wait=True)
            self._journal_executor = None
        self._queue = None
        return final_snapshot

    async def __aenter__(self) -> SketchService:
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop(drain=True)

    # ---------------------------------------------------------------- ingest
    def _validate_chunk(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None,
        site: int,
    ) -> _IngestChunk:
        if self._stopping or self._queue is None:
            raise ServiceStoppedError("service is not accepting ingest")
        n = len(keys)
        if n == 0:
            raise IngestRejectedError("empty ingest chunk")
        if len(clocks) != n:
            raise IngestRejectedError(
                "clocks length %d does not match keys length %d" % (len(clocks), n)
            )
        if values is not None and len(values) != n:
            raise IngestRejectedError(
                "values length %d does not match keys length %d" % (len(values), n)
            )
        self._validate_clocks(clocks)
        if values is not None:
            validate_values_column(values)
        mode = self.config.mode
        validate_keys_for_mode(keys, mode, self.config.universe_bits)
        if mode == "multisite" and (
            not isinstance(site, int) or not (0 <= site < self.config.sites)
        ):
            raise IngestRejectedError(
                "site must be an integer in [0, %d), got %r" % (self.config.sites, site)
            )
        # Clocks are passed through as-is: count-based windows carry integer
        # clocks, and coercing them to float would change the serialized
        # state relative to a serial reference run (1 vs 1.0 on the wire).
        return _IngestChunk(
            site=site,
            keys=list(keys),
            clocks=list(clocks),
            values=list(values) if values is not None else None,
        )

    def _validate_clocks(self, clocks: Sequence[float]) -> None:
        """Validate a clock column against the service's high-water mark."""
        validate_clock_column(clocks, self._submitted_clock)

    async def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
        site: int = 0,
        client_id: str | None = None,
        seq: int | None = None,
    ) -> int:
        """Validate and enqueue one chunk of arrivals; returns the accepted count.

        The returned acknowledgement means *accepted and ordered*, not yet
        applied: queries reflect the chunk only after it leaves the queue
        (await :meth:`drain` for a barrier).  Without a journal, a crash
        before the next snapshot loses acked-unapplied chunks; with
        ``journal_dir`` set the chunk hits the write-ahead journal *before*
        this call returns, so the ack is crash-durable.  When the queue is
        full this call suspends until the consumer frees a slot —
        backpressure, not loss.

        ``(client_id, seq)`` is the optional retry identity: a chunk whose
        seq is at or below the client's acked high-water mark is re-acked
        without being re-applied, which is what makes reconnect-and-resend
        exactly-once.
        """
        if client_id is not None and seq is not None:
            acked = self._acked_seqs.get(client_id)
            if acked is not None and seq <= acked:
                # Duplicate of an already-acked chunk (client retried after a
                # lost response): idempotent re-ack, nothing applied.
                self.duplicate_chunks += 1
                return len(keys)
        chunk = self._validate_chunk(keys, clocks, values, site)
        chunk.client_id = client_id
        chunk.seq = seq
        assert self._queue is not None  # _validate_chunk guarantees started
        # Ordering-critical section: the mark advance must follow validation
        # with no await in between, or a concurrent producer could validate
        # against a stale mark and regress clocks after the ack.
        self._submitted_clock = chunk.clocks[-1]
        self._pending_arrivals += len(chunk)
        previous_ack: int | None = None
        if client_id is not None and seq is not None:
            # Claim the seq *before* the awaited journal append: a client
            # that reconnected and resent while this request is parked on
            # the journal executor must hit the dedup check above, or both
            # copies would be journaled and applied.  Rolled back below if
            # the append fails (so the seq is not marked acked-and-lost).
            previous_ack = self._acked_seqs.get(client_id)
            self._note_seq(self._acked_seqs, client_id, seq)
        if self._journal is not None and self._journal_executor is not None:
            # Journal-before-ack.  The single-worker executor is FIFO and
            # run_in_executor submits synchronously here (before this
            # coroutine yields), so journal order matches mark order — and
            # loop wakeups of these futures are FIFO too, so queue order
            # matches journal order.
            loop = asyncio.get_running_loop()
            try:
                chunk.journal_seq = await loop.run_in_executor(
                    self._journal_executor,
                    self._journal.append,
                    chunk.site,
                    chunk.keys,
                    chunk.clocks,
                    chunk.values,
                    client_id,
                    seq,
                )
            except Exception as exc:
                # Not acked; the chunk is dropped.  The submitted mark stays
                # advanced (another producer may have validated against it
                # already), so a retry of *this* clock range can be rejected
                # as a regression — disk-failure-class behaviour, surfaced
                # loudly rather than silently un-journaled.
                self._pending_arrivals -= len(chunk)
                if (
                    client_id is not None
                    and seq is not None
                    and self._acked_seqs.get(client_id) == seq
                ):
                    # Undo only *our* claim: a concurrent chunk from the
                    # same client may have advanced the mark past ours, and
                    # that chunk's ack must stand.
                    if previous_ack is None:
                        self._acked_seqs.pop(client_id, None)
                    else:
                        self._acked_seqs[client_id] = previous_ack
                self.journal_errors += 1
                raise ServiceError(
                    "write-ahead journal append failed: %s" % (exc,)
                ) from exc
        await self._queue.put(chunk)
        return len(chunk)

    def _note_seq(self, table: dict[str, int], client_id: str, seq: int) -> None:
        """Advance a client's seq high-water mark; LRU-evict beyond the cap."""
        previous = table.pop(client_id, None)
        table[client_id] = seq if previous is None or seq > previous else previous
        limit = self.config.dedup_clients
        while len(table) > limit:
            table.pop(next(iter(table)))

    def _replay_journal_records(self, records: list[JournalRecord]) -> None:
        """Apply recovered journal records (acked pre-crash, lost from state)."""
        for record in records:
            chunk = _IngestChunk(
                site=record.site,
                keys=record.keys,
                clocks=record.clocks,
                values=record.values,
                client_id=record.client_id,
                seq=record.seq,
                journal_seq=record.jseq,
            )
            self._pending_arrivals += len(chunk)
            self._apply_chunks([chunk])
            if record.client_id is not None and record.seq is not None:
                self._note_seq(self._acked_seqs, record.client_id, record.seq)
        if records:
            self._submitted_clock = self._applied_clock

    async def drain(self) -> None:
        """Resolve once every acknowledged arrival has been applied."""
        if self._queue is None:
            raise ServiceStoppedError("service is not started")
        await self._queue.join()

    async def _ingest_loop(self) -> None:
        assert self._queue is not None
        queue = self._queue
        batch_cap = self.config.batch_size
        while True:
            chunks = [await queue.get()]
            total = len(chunks[0])
            # Coalesce whatever else is already queued, up to the micro-batch
            # cap, so a burst of small client chunks still ingests through
            # few large add_many calls.
            while total < batch_cap:
                try:
                    chunk = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                chunks.append(chunk)
                total += len(chunk)
            # _apply_chunks decrements _pending_arrivals per applied group
            # and runs synchronously (no await), so no other coroutine can
            # touch the counter between this capture and the except below.
            pending_before = self._pending_arrivals
            try:
                self._apply_chunks(chunks)
            except Exception:
                # Validation runs before the ack, so an apply failure is a
                # bug — but one that must not kill the consumer: a dead
                # consumer would silently strand every later acknowledged
                # chunk and deadlock drain().  Drop the batch, count it,
                # keep consuming.  The absolute assignment (not -=) avoids
                # double-counting groups _apply_chunks already decremented
                # before it raised.
                self._pending_arrivals = pending_before - total
                self.ingest_apply_errors += 1
            finally:
                for _ in chunks:
                    queue.task_done()
            # Yield between micro-batches so queued queries interleave with
            # a sustained ingest flood instead of starving behind it.
            await asyncio.sleep(0)

    def _apply_chunks(self, chunks: list[_IngestChunk]) -> None:
        """Apply coalesced chunks in arrival order, grouped per site."""
        state = self.state
        batch_cap = self.config.batch_size
        index = 0
        while index < len(chunks):
            # Merge consecutive chunks from the same site into one call.
            head = chunks[index]
            site = head.site
            group_size = len(head)
            scan = index + 1
            while scan < len(chunks):
                candidate = chunks[scan]
                if (
                    candidate.site != site
                    or group_size + len(candidate) > batch_cap
                    or (head.values is None) != (candidate.values is None)
                ):
                    break
                group_size += len(candidate)
                scan += 1
            if scan == index + 1:
                # Steady-state common case (consumer keeping up, one chunk
                # per micro-batch): hand the chunk's own lists to add_many —
                # _validate_chunk already copied them, a second copy here
                # would just be hot-path waste.
                keys: list[Hashable] = head.keys
                clocks: list[float] = head.clocks
                values: list[int] | None = head.values
            else:
                keys = []
                clocks = []
                values = [] if head.values is not None else None
                for chunk in chunks[index:scan]:
                    keys.extend(chunk.keys)
                    clocks.extend(chunk.clocks)
                    if values is not None and chunk.values is not None:
                        values.extend(chunk.values)
            if isinstance(state, PeriodicAggregationCoordinator):
                records = [
                    StreamRecord(
                        timestamp=clocks[i],
                        key=keys[i],
                        node=site,
                        value=values[i] if values is not None else 1,
                    )
                    for i in range(len(keys))
                ]
                state.observe_batch(records, batch_size=batch_cap)
            else:
                for start in range(0, len(keys), batch_cap):
                    stop = start + batch_cap
                    state.add_many(
                        keys[start:stop],
                        clocks[start:stop],
                        values[start:stop] if values is not None else None,
                    )
            count = len(keys)
            weight = count if values is None else sum(values)
            self.records_ingested += weight
            self._pending_arrivals -= count
            self._applied_clock = clocks[-1]
            self.ingest_batches += 1
            # Applied-position bookkeeping rides the same synchronous apply
            # step, so any snapshot (a cut between micro-batches) carries a
            # journal position and dedup map consistent with its state.
            for chunk in chunks[index:scan]:
                if chunk.journal_seq is not None:
                    self._applied_journal_seq = chunk.journal_seq
                if chunk.client_id is not None and chunk.seq is not None:
                    self._note_seq(self._applied_seqs, chunk.client_id, chunk.seq)
            index = scan

    # ----------------------------------------------------- background sweeps
    def _background_failure(self, task_name: str, error: Exception) -> None:
        """Count and report a background-task failure without dying.

        A transient error (disk full during a snapshot, say) must not
        silently kill the loop — the service would keep serving while its
        durability quietly stopped.  The loop retries on its next period;
        the counter surfaces the problem in ``stats()``.
        """
        self.background_errors += 1
        print(
            "sketch-service: background %s failed (%s: %s); will retry"
            % (task_name, type(error).__name__, error),
            file=sys.stderr,
            flush=True,
        )

    async def _expire_loop(self) -> None:
        assert self.config.expire_every is not None
        while True:
            await asyncio.sleep(self.config.expire_every)
            try:
                self.expire_now()
            except Exception as exc:
                self._background_failure("expire sweep", exc)

    def expire_now(self) -> None:
        """Sweep out-of-window state from every served sketch, immediately."""
        clock = self._applied_clock
        if clock is None:
            return
        state = self.state
        if isinstance(state, ECMSketch):
            state.expire(clock)
        elif isinstance(state, HierarchicalECMSketch):
            for level in range(state.universe_bits):
                state.level_sketch(level).expire(clock)
        else:
            for node in state.nodes:
                node.sketch.expire(clock)

    async def _snapshot_loop(self) -> None:
        assert self.config.snapshot_every is not None
        while True:
            await asyncio.sleep(self.config.snapshot_every)
            try:
                await self.snapshot_async()
            except Exception as exc:
                self._background_failure("snapshot", exc)

    async def snapshot_async(self, path: str | None = None) -> str:
        """Snapshot without stalling the event loop for the disk write.

        The payload is built on the loop (that is what makes it a consistent
        cut between micro-batches), but the JSON encode + fsync + rename —
        tens of milliseconds even for modest states — run in the default
        executor so ingest and queries keep flowing.

        Args:
            path: Explicit destination; overrides ``config.snapshot_path``
                (the shard router drives per-shard snapshots through this).
        """
        from .snapshot import snapshot_payload, write_snapshot

        destination = path if path is not None else self.config.snapshot_path
        if destination is None:
            raise InvalidParameterError("no snapshot_path configured")
        # One snapshot at a time: with concurrent writers (the periodic loop
        # plus a protocol `snapshot` op), an older payload could finish its
        # os.replace *after* a newer one and silently roll the file back.
        async with self._snapshot_lock:
            payload = snapshot_payload(self)
            # Captured in the same no-await tick as the payload: the mark
            # may advance during the disk write below, but rotation must
            # fence epoch deletion on the position *this* snapshot covers.
            applied_jseq = self._applied_journal_seq
            loop = asyncio.get_running_loop()
            path_written = await loop.run_in_executor(
                None, write_snapshot, destination, payload
            )
            if self._journal is not None and self._journal_executor is not None:
                # The snapshot carries the applied journal position, so the
                # journal can rotate: recovery = this snapshot + the epochs
                # holding records past that position.  Rotation keeps the
                # previous epoch as insurance against a crash between these
                # two steps, and keeps any epoch whose tail the snapshot
                # has not covered (journaled-but-queued records).
                await loop.run_in_executor(
                    self._journal_executor, self._journal.rotate, applied_jseq
                )
        self.snapshots_written += 1
        self.last_snapshot_path = path_written
        return path_written

    def snapshot_now(self, path: str | None = None) -> str:
        """Write an atomic snapshot of the applied state; returns the path.

        Synchronous (blocks the caller, and the event loop when called from
        it) — the right tool at shutdown and in scripts; the periodic
        snapshot task and the ``snapshot`` protocol op use
        :meth:`snapshot_async` instead.
        """
        from .snapshot import snapshot_payload, write_snapshot

        destination = path if path is not None else self.config.snapshot_path
        if destination is None:
            raise InvalidParameterError("no snapshot_path configured")
        payload = snapshot_payload(self)
        applied_jseq = self._applied_journal_seq
        path_written = write_snapshot(destination, payload)
        if self._journal is not None:
            # Route the rotation through the journal executor when it is
            # live so it cannot interleave with an in-flight append.
            if self._journal_executor is not None:
                self._journal_executor.submit(self._journal.rotate, applied_jseq).result()
            else:
                self._journal.rotate(applied_jseq)
        self.snapshots_written += 1
        self.last_snapshot_path = path_written
        return path_written

    # ---------------------------------------------------------------- queries
    @property
    def applied_clock(self) -> float | None:
        """Stream clock of the most recent *applied* arrival."""
        return self._applied_clock

    def query(self, op: str, message: dict[str, Any]) -> Any:
        """Answer one query operation against the live state.

        Raises:
            ServiceError: Unknown or mode-incompatible operation, or missing
                parameters.
            EmptyStructureError: Multisite queries before the first round.
        """
        handler = _QUERY_HANDLERS.get(op)
        if handler is None:
            raise UnknownOperationError("unknown query op %r" % (op,))
        return handler(self, message)

    def _require_flat(self) -> ECMSketch:
        if not isinstance(self.state, ECMSketch):
            raise ModeMismatchError("operation requires mode=flat (running %s)" % self.config.mode)
        return self.state

    def _require_hierarchical(self) -> HierarchicalECMSketch:
        if not isinstance(self.state, HierarchicalECMSketch):
            raise ModeMismatchError(
                "operation requires mode=hierarchical (running %s)" % self.config.mode
            )
        return self.state

    def _require_multisite(self) -> PeriodicAggregationCoordinator:
        if not isinstance(self.state, PeriodicAggregationCoordinator):
            raise ModeMismatchError(
                "operation requires mode=multisite (running %s)" % self.config.mode
            )
        return self.state

    def _query_point(self, message: dict[str, Any]) -> float:
        key = _require_param(message, "key")
        range_length = message.get("range")
        state = self.state
        if isinstance(state, PeriodicAggregationCoordinator):
            return float(state.query_frequency(key, range_length))
        if isinstance(state, HierarchicalECMSketch):
            return float(state.point_query(_as_int_key(key), range_length))
        return float(state.point_query(key, range_length))

    def _query_range(self, message: dict[str, Any]) -> float:
        stack = self._require_hierarchical()
        lo = _as_int_key(_require_param(message, "lo"))
        hi = _as_int_key(_require_param(message, "hi"))
        return float(stack.range_query(lo, hi, message.get("range")))

    def _query_heavy_hitters(self, message: dict[str, Any]) -> list[tuple[int, float]]:
        stack = self._require_hierarchical()
        absolute = message.get("absolute")
        if absolute is None:
            phi = float(_require_param(message, "phi"))
            hitters = stack.heavy_hitters(phi, message.get("range"))
        else:
            # Absolute-threshold detection: used by the shard router, which
            # converts the relative phi into occurrences against the *global*
            # arrival total before fanning out (each shard only sees its own
            # slice of the stream, so a per-shard phi would be meaningless).
            hitters = stack.heavy_hitters(
                1.0, message.get("range"), absolute_threshold=float(absolute)
            )
        return sorted(hitters.items(), key=lambda item: (-item[1], item[0]))

    def _query_quantile(self, message: dict[str, Any]) -> int:
        stack = self._require_hierarchical()
        fraction = float(_require_param(message, "fraction"))
        return int(stack.quantile(fraction, message.get("range")))

    def _query_quantiles(self, message: dict[str, Any]) -> list[int]:
        stack = self._require_hierarchical()
        fractions = _require_param(message, "fractions")
        if not isinstance(fractions, (list, tuple)) or not fractions:
            raise InvalidParameterError("fractions must be a non-empty list")
        return [int(key) for key in stack.quantiles([float(f) for f in fractions],
                                                    message.get("range"))]

    def _query_self_join(self, message: dict[str, Any]) -> float:
        state = self.state
        if isinstance(state, PeriodicAggregationCoordinator):
            return float(state.query_self_join(message.get("range")))
        if isinstance(state, HierarchicalECMSketch):
            raise ModeMismatchError("self_join is not served in hierarchical mode")
        return float(state.self_join(message.get("range")))

    def _query_arrivals(self, message: dict[str, Any]) -> float:
        state = self.state
        if isinstance(state, HierarchicalECMSketch):
            return float(state.estimate_total(message.get("range")))
        sketch = self._require_flat()
        return float(sketch.estimate_arrivals(message.get("range")))

    def _query_staleness(self, message: dict[str, Any]) -> float:
        coordinator = self._require_multisite()
        now = message.get("now", self._applied_clock)
        if now is None:
            raise EmptyStructureError("no arrivals applied yet")
        return float(coordinator.staleness(float(now)))

    def _query_root_state(self, message: dict[str, Any]) -> dict[str, Any]:
        """Serialized root aggregate of the latest round (multisite only).

        The shard router merges these per-worker roots with
        :meth:`~repro.core.ecm_sketch.ECMSketch.merge_many` to answer
        cross-shard self-join queries (Theorem 4 order-preserving
        aggregation over the wire format).
        """
        from ..serialization import ecm_sketch_to_dict

        coordinator = self._require_multisite()
        return {
            "sketch": ecm_sketch_to_dict(coordinator.root_sketch()),
            "round_clock": coordinator.last_round_clock,
        }

    # ------------------------------------------------------------------ stats
    def info(self) -> dict[str, Any]:
        """Static service parameters (what a client needs to build load)."""
        from .protocol import PROTOCOL_VERSION

        info = self.config.describe()
        info["protocol_version"] = PROTOCOL_VERSION
        return info

    def stats(self) -> dict[str, Any]:
        """Live service counters."""
        state = self.state
        memory: int
        synopsis: int
        if isinstance(state, PeriodicAggregationCoordinator):
            memory = sum(node.sketch.memory_bytes() for node in state.nodes)
            synopsis = sum(node.sketch.synopsis_bytes() for node in state.nodes)
        else:
            memory = state.memory_bytes()
            synopsis = state.synopsis_bytes()
        stats: dict[str, Any] = {
            "mode": self.config.mode,
            "backend": self.config.backend,
            "records_ingested": self.records_ingested,
            "ingest_batches": self.ingest_batches,
            "ingest_apply_errors": self.ingest_apply_errors,
            "background_errors": self.background_errors,
            "pending_arrivals": self._pending_arrivals,
            "pending_chunks": self._queue.qsize() if self._queue is not None else 0,
            "applied_clock": self._applied_clock,
            "submitted_clock": self._submitted_clock,
            "memory_bytes": memory,
            "synopsis_bytes": synopsis,
            "snapshots_written": self.snapshots_written,
            "last_snapshot_path": self.last_snapshot_path,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "draining": self._stopping,
            "duplicate_chunks": self.duplicate_chunks,
            "dedup_clients_tracked": len(self._acked_seqs),
        }
        if self._journal is not None:
            stats["journal"] = self._journal.stats()
            stats["journal_errors"] = self.journal_errors
        if isinstance(state, PeriodicAggregationCoordinator):
            stats["rounds"] = state.stats.rounds
            stats["transfer_bytes"] = state.stats.transfer_bytes
            stats["last_round_clock"] = state.last_round_clock
        return stats

    def __repr__(self) -> str:
        return "SketchService(mode=%s, ingested=%d, pending=%d)" % (
            self.config.mode,
            self.records_ingested,
            self._pending_arrivals,
        )


def _require_param(message: dict[str, Any], name: str) -> Any:
    if name not in message:
        raise InvalidParameterError("missing required parameter %r" % (name,))
    return message[name]


def _as_int_key(key: Any) -> int:
    if isinstance(key, bool) or not isinstance(key, int):
        raise InvalidParameterError("hierarchical keys must be integers, got %r" % (key,))
    return key


_QUERY_HANDLERS: dict[str, Callable[[SketchService, dict[str, Any]], Any]] = {
    "point": SketchService._query_point,
    "range": SketchService._query_range,
    "heavy_hitters": SketchService._query_heavy_hitters,
    "quantile": SketchService._query_quantile,
    "quantiles": SketchService._query_quantiles,
    "self_join": SketchService._query_self_join,
    "arrivals": SketchService._query_arrivals,
    "staleness": SketchService._query_staleness,
    "root_state": SketchService._query_root_state,
}
