"""Newline-delimited-JSON wire protocol of the sketch service.

Every request and response is one JSON object on one line, UTF-8 encoded and
terminated by ``\\n``.  Requests carry an ``op`` field naming the operation
and operation-specific parameters; an optional ``id`` field is echoed back
verbatim so clients can pipeline requests over one connection.  Responses are
``{"ok": true, "result": ...}`` or the typed error envelope
``{"ok": false, "error": {"code": "...", "message": "...", "op": "..."}}``
(codes are registered in :mod:`repro.service.errors`).

The protocol is versioned (:data:`PROTOCOL_VERSION`, semver-ish
``major.minor``).  Clients open each connection with a ``hello`` op carrying
their ``protocol_version``; servers reject a mismatched *major* with a
``VERSION_MISMATCH`` envelope instead of failing on an unknown op
mid-stream.  Minor revisions are additive (new ops, new optional fields) and
interoperate freely.  ``info`` also reports the server's version for
observability.  Version history: ``1.x`` used a bare-string ``error`` field;
``2.0`` introduced the typed envelope, the hello exchange and
tenant-namespaced operations; ``2.1`` added the ``failpoint`` op, optional
``client``/``seq`` exactly-once ingest markers and the ``DEADLINE_EXCEEDED``
error code.

On a pooled server (``repro serve --pool``) every stateful op below accepts
a ``tenant`` field naming the target tenant, plus the tenant lifecycle ops
``tenant_create``/``tenant_delete``/``tenant_list``/``tenant_stats`` and the
explicit budget sweep ``pool_sweep``.

Operations (see :meth:`repro.service.server.SketchServer` for dispatch):

========================= ======================================================
``ping``                  liveness probe; result ``"pong"``
``hello``                 version handshake: client sends ``protocol_version``,
                          server answers with its own or rejects the major
``info``                  service mode/parameters a client needs to build load
``stats``                 live counters: ingested, pending, clock, memory, ...
``ingest``                ``keys``/``clocks``(/``values``/``site``) columns;
                          acknowledged once *enqueued* (see ``drain``) — and,
                          when journaling, only after the chunk is journaled.
                          Optional ``client``/``seq`` markers make retries
                          exactly-once: an already-acked ``seq`` is
                          re-acknowledged without being re-applied
``drain``                 barrier: resolves once every previously acknowledged
                          arrival has been applied to the sketch state
``point``                 point-frequency query (``key``, optional ``range``)
``range``                 range-frequency query (``lo``, ``hi``; hierarchical)
``heavy_hitters``         ``phi`` threshold (hierarchical); the shard router
                          sends workers ``absolute`` — an occurrence threshold
                          resolved against the global arrival total — instead
``quantile``/``quantiles`` ``fraction``/``fractions`` (hierarchical)
``self_join``             second frequency moment (flat / multisite)
``arrivals``              estimated arrivals in the range (flat/hierarchical)
``staleness``             coordinator lag in clock units (multisite)
``root_state``            serialized root aggregate of the latest round plus
                          its clock (multisite; the router merges these via
                          ``ECMSketch.merge_many`` for cross-shard self-joins)
``expire``                sweep out-of-window state from every cell now
``snapshot``              write a snapshot now (optional explicit ``path`` —
                          how the router drives per-shard snapshot files);
                          result is the path
``restart_shard``         respawn worker ``shard`` from its last per-shard
                          snapshot (sharded servers only)
``failpoint``             fault injection: arm a ``spec`` of named failure
                          sites, ``disarm`` (optionally one ``name``), or
                          target one worker with ``shard``; result lists the
                          armed sites
``shutdown``              drain, snapshot (if configured) and stop the server
========================= ======================================================
"""

from __future__ import annotations

import json
from typing import Any

from .errors import ProtocolError, VersionMismatchError, error_envelope

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "PROTOCOL_MAJOR",
    "ProtocolError",
    "protocol_major",
    "check_protocol_version",
    "encode_message",
    "decode_line",
    "ok_response",
    "error_response",
    "error_response_for",
]

#: Wire-protocol version spoken by this build, as ``major.minor``.  Majors
#: gate interoperability (the hello exchange rejects a mismatch); minors are
#: additive.  2.0 = typed error envelope + hello + tenant namespacing;
#: 2.1 = failpoint op + exactly-once ingest markers + DEADLINE_EXCEEDED.
PROTOCOL_VERSION = "2.1"

#: Major component of :data:`PROTOCOL_VERSION`.
PROTOCOL_MAJOR = 2

#: Upper bound on one protocol line.  An ingest chunk of a few thousand
#: arrivals is a few hundred KiB of JSON; 8 MiB leaves an order of magnitude
#: of headroom while still bounding a malformed (newline-free) client.
MAX_LINE_BYTES = 8 * 1024 * 1024


def protocol_major(version: str) -> int:
    """Extract the major component of a ``major.minor`` version string."""
    if not isinstance(version, str):
        raise ProtocolError("protocol_version must be a string, got %r" % (version,))
    head = version.split(".", 1)[0]
    try:
        return int(head)
    except ValueError:
        raise ProtocolError("malformed protocol_version %r" % (version,)) from None


def check_protocol_version(version: str) -> None:
    """Reject a peer version whose major differs from ours.

    Raises:
        VersionMismatchError: The majors differ (incompatible wire format).
        ProtocolError: The version string is malformed.
    """
    major = protocol_major(version)
    if major != PROTOCOL_MAJOR:
        raise VersionMismatchError(
            "protocol major %d (version %s) is incompatible with this peer's "
            "major %d (version %s)" % (major, version, PROTOCOL_MAJOR, PROTOCOL_VERSION)
        )


def encode_message(message: dict[str, Any]) -> bytes:
    """Encode one message as a compact JSON line (trailing newline included)."""
    try:
        text = json.dumps(message, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("message is not JSON-serializable: %s" % (exc,)) from exc
    data = text.encode("utf-8")
    if len(data) + 1 > MAX_LINE_BYTES:
        raise ProtocolError(
            "message of %d bytes exceeds the %d-byte line limit" % (len(data), MAX_LINE_BYTES)
        )
    return data + b"\n"


def _reject_constant(token: str) -> float:
    # Mirrors encode_message's allow_nan=False: NaN/Infinity are not JSON,
    # and a NaN smuggled into (say) a clock column defeats every ordering
    # comparison downstream.
    raise ValueError("non-finite JSON constant %r is not accepted" % (token,))


def decode_line(line: bytes) -> dict[str, Any]:
    """Decode one protocol line into a message dictionary."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "line of %d bytes exceeds the %d-byte limit" % (len(line), MAX_LINE_BYTES)
        )
    try:
        payload = json.loads(line.decode("utf-8"), parse_constant=_reject_constant)
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
        raise ProtocolError("line is not valid JSON: %s" % (exc,)) from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object, got %s" % (type(payload).__name__,))
    return payload


def ok_response(result: Any, request_id: Any | None = None) -> dict[str, Any]:
    """Successful response envelope."""
    response: dict[str, Any] = {"ok": True, "result": result}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    code: str,
    message: str,
    op: str | None = None,
    request_id: Any | None = None,
) -> dict[str, Any]:
    """Typed failure envelope: ``{"ok": false, "error": {code, message, op}}``."""
    response: dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message, "op": op},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response_for(
    exc: BaseException,
    op: str | None = None,
    request_id: Any | None = None,
) -> dict[str, Any]:
    """Failure envelope for one exception, via the error-code registry."""
    envelope = error_envelope(exc, op)
    response: dict[str, Any] = {"ok": False, "error": envelope}
    if request_id is not None:
        response["id"] = request_id
    return response
