"""Newline-delimited-JSON wire protocol of the sketch service.

Every request and response is one JSON object on one line, UTF-8 encoded and
terminated by ``\\n``.  Requests carry an ``op`` field naming the operation
and operation-specific parameters; an optional ``id`` field is echoed back
verbatim so clients can pipeline requests over one connection.  Responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": "..."}``.

Operations (see :meth:`repro.service.server.SketchServer` for dispatch):

========================= ======================================================
``ping``                  liveness probe; result ``"pong"``
``info``                  service mode/parameters a client needs to build load
``stats``                 live counters: ingested, pending, clock, memory, ...
``ingest``                ``keys``/``clocks``(/``values``/``site``) columns;
                          acknowledged once *enqueued* (see ``drain``)
``drain``                 barrier: resolves once every previously acknowledged
                          arrival has been applied to the sketch state
``point``                 point-frequency query (``key``, optional ``range``)
``range``                 range-frequency query (``lo``, ``hi``; hierarchical)
``heavy_hitters``         ``phi`` threshold (hierarchical); the shard router
                          sends workers ``absolute`` — an occurrence threshold
                          resolved against the global arrival total — instead
``quantile``/``quantiles`` ``fraction``/``fractions`` (hierarchical)
``self_join``             second frequency moment (flat / multisite)
``arrivals``              estimated arrivals in the range (flat/hierarchical)
``staleness``             coordinator lag in clock units (multisite)
``root_state``            serialized root aggregate of the latest round plus
                          its clock (multisite; the router merges these via
                          ``ECMSketch.merge_many`` for cross-shard self-joins)
``expire``                sweep out-of-window state from every cell now
``snapshot``              write a snapshot now (optional explicit ``path`` —
                          how the router drives per-shard snapshot files);
                          result is the path
``restart_shard``         respawn worker ``shard`` from its last per-shard
                          snapshot (sharded servers only)
``shutdown``              drain, snapshot (if configured) and stop the server
========================= ======================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode_message",
    "decode_line",
    "ok_response",
    "error_response",
]

#: Upper bound on one protocol line.  An ingest chunk of a few thousand
#: arrivals is a few hundred KiB of JSON; 8 MiB leaves an order of magnitude
#: of headroom while still bounding a malformed (newline-free) client.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed protocol line or message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """Encode one message as a compact JSON line (trailing newline included)."""
    try:
        text = json.dumps(message, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("message is not JSON-serializable: %s" % (exc,)) from exc
    data = text.encode("utf-8")
    if len(data) + 1 > MAX_LINE_BYTES:
        raise ProtocolError(
            "message of %d bytes exceeds the %d-byte line limit" % (len(data), MAX_LINE_BYTES)
        )
    return data + b"\n"


def _reject_constant(token: str) -> float:
    # Mirrors encode_message's allow_nan=False: NaN/Infinity are not JSON,
    # and a NaN smuggled into (say) a clock column defeats every ordering
    # comparison downstream.
    raise ValueError("non-finite JSON constant %r is not accepted" % (token,))


def decode_line(line: bytes) -> Dict[str, Any]:
    """Decode one protocol line into a message dictionary."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "line of %d bytes exceeds the %d-byte limit" % (len(line), MAX_LINE_BYTES)
        )
    try:
        payload = json.loads(line.decode("utf-8"), parse_constant=_reject_constant)
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
        raise ProtocolError("line is not valid JSON: %s" % (exc,)) from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object, got %s" % (type(payload).__name__,))
    return payload


def ok_response(result: Any, request_id: Optional[Any] = None) -> Dict[str, Any]:
    """Successful response envelope."""
    response: Dict[str, Any] = {"ok": True, "result": result}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(message: str, request_id: Optional[Any] = None) -> Dict[str, Any]:
    """Failure response envelope."""
    response: Dict[str, Any] = {"ok": False, "error": message}
    if request_id is not None:
        response["id"] = request_id
    return response
