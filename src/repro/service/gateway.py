"""HTTP/REST gateway in front of the NDJSON TCP tier.

``repro gateway`` runs one of these: a small stdlib-asyncio HTTP/1.1 server
that translates REST calls into protocol messages against a running sketch
server (single-process, pooled, or the sharded router — the gateway does not
care, it speaks the same protocol every client does, handshake included).

Routes (all under ``/v1``; responses are JSON envelopes, exactly the wire
shape of the TCP protocol)::

    GET    /v1/healthz                      gateway+backend liveness (200/503)
    GET    /v1/info                         server parameters
    GET    /v1/stats                        live counters
    GET    /v1/tenants                      tenant catalog listing
    PUT    /v1/tenants/{id}                 create tenant (body: config overrides)
    GET    /v1/tenants/{id}                 tenant stats
    DELETE /v1/tenants/{id}                 delete tenant
    POST   /v1/tenants/{id}/ingest          body: {"keys", "clocks", ["values"], ["site"]}
    POST   /v1/tenants/{id}/drain           apply-barrier for one tenant
    POST   /v1/tenants/{id}/expire          expiry sweep for one tenant
    POST   /v1/tenants/{id}/snapshot        snapshot one tenant (body: {"path"}?)
    GET    /v1/tenants/{id}/query/{op}      any query op; params in the query string
    POST   /v1/ingest /v1/drain /v1/expire /v1/snapshot      un-namespaced forms
    POST   /v1/sweep                        pool governor sweep
    GET    /v1/query/{op}                   un-namespaced query (single-sketch server)

Error mapping is by machine code, not message: the backend's typed error
envelope passes through verbatim as the response body, and its ``code``
picks the HTTP status from :data:`STATUS_FOR_CODE` — so the REST surface
and the TCP surface disagree on transport only, never on the error itself.

Query-string parameters are JSON-decoded when they parse (so ``key=7`` is
the integer 7, ``key="7"`` the string) and passed through as strings
otherwise; ``fractions`` accepts a comma-separated list.
"""

from __future__ import annotations
import contextlib

import asyncio
import json
import signal
import uuid
from collections.abc import Callable
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

from .client import RetryPolicy, ServiceClient
from .errors import (
    DeadlineExceededError,
    ProtocolError,
    ServiceError,
    ServiceStoppedError,
    error_envelope,
)
from .protocol import MAX_LINE_BYTES

__all__ = ["STATUS_FOR_CODE", "GatewayServer", "run_gateway", "status_for_code"]

#: HTTP status for each protocol error code.  Codes the registry does not
#: know (a newer server's) fall back to 500 — fail loud, not mislabelled.
#: ``NOT_FOUND``/``METHOD_NOT_ALLOWED`` are gateway-level routing codes.
STATUS_FOR_CODE: dict[str, int] = {
    "PROTOCOL": 400,
    "BAD_REQUEST": 400,
    "UNKNOWN_OP": 400,
    "INVALID_PARAMETER": 400,
    "TENANT_REQUIRED": 400,
    "VERSION_MISMATCH": 400,
    "POOL_DISABLED": 400,
    "INGEST_REJECTED": 400,
    "NOT_FOUND": 404,
    "TENANT_NOT_FOUND": 404,
    "METHOD_NOT_ALLOWED": 405,
    "MODE_MISMATCH": 409,
    "EMPTY_STRUCTURE": 409,
    "CLOCK_REGRESSION": 409,
    "TENANT_EXISTS": 409,
    "SERVICE_STOPPED": 503,
    "SHARD_UNAVAILABLE": 503,
    "DEADLINE_EXCEEDED": 504,
    "TENANT_EVICTED": 500,
    "INTERNAL": 500,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: ``Retry-After`` value (seconds) sent with every 503: transient by
#: definition — the backend is restarting or a shard is mid-recovery.
_RETRY_AFTER_SECONDS = 1

#: Retry policy of the gateway's backend channel: reconnect-and-retry wins
#: over fail-loud now that ingest is exactly-once (``client``/``seq`` dedup).
_BACKEND_RETRY = RetryPolicy(attempts=4, base_delay=0.1, max_delay=2.0, deadline=30.0)

#: Budget for the healthz probe — a health check must answer fast.
_HEALTH_DEADLINE = 2.0

#: Bound on establishing one backend connection (RL006).
_CONNECT_TIMEOUT = 10.0

#: Request bodies larger than this are rejected (same bound as the protocol).
_MAX_BODY_BYTES = MAX_LINE_BYTES


def status_for_code(code: Any) -> int:
    """HTTP status for one error code (500 for anything unknown)."""
    if isinstance(code, str):
        return STATUS_FOR_CODE.get(code, 500)
    return 500


class _RouteError(Exception):
    """A gateway-level routing failure (never reaches the backend)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class _BackendChannel:
    """One serialized protocol connection to the backend tier.

    Requests on the NDJSON protocol are answered in order, so one connection
    guarded by a lock serves the gateway.  The connection carries a
    :class:`~repro.service.client.RetryPolicy`: a dropped connection or a
    restarted backend is reconnected and the request retried with backoff,
    which is safe for ingest because every chunk carries this channel's
    stable ``client`` id and a monotonic ``seq`` — a backend that already
    applied the chunk re-acknowledges it without double-counting.  Only when
    the whole retry budget is exhausted does the request fail (503/504), and
    the channel reconnects lazily on the next one.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._client: ServiceClient | None = None
        self._lock = asyncio.Lock()
        # Exactly-once identity of this channel: stable across backend
        # reconnects (a fresh ServiceClient would mint a fresh id, losing
        # the dedup window mid-retry).
        self._client_id = uuid.uuid4().hex[:16]
        self._seq = 0
        #: Requests that needed at least one retry/reconnect to succeed.
        self.retried_requests = 0

    async def request(self, message: dict[str, Any]) -> Any:
        # The lock intentionally serializes the whole round-trip: a channel
        # is ONE backend connection, and the TCP protocol is one-request-
        # one-response per connection (no interleaving), so peers queueing
        # behind the await is the design, not the RL003 race.
        async with self._lock:
            if message.get("op") == "ingest" and "seq" not in message:
                self._seq += 1
                message = dict(message, client=self._client_id, seq=self._seq)
            try:
                if self._client is None:
                    self._client = await ServiceClient.connect(  # reprolint: disable=RL003 -- see lock note
                        self.host, self.port, retry=_BACKEND_RETRY, timeout=_CONNECT_TIMEOUT
                    )
                retries_before = self._client.retries
                try:
                    return await self._client.call(
                        message, deadline=self._deadline_for(message)
                    )
                finally:
                    if self._client is not None and self._client.retries > retries_before:
                        self.retried_requests += 1
            except DeadlineExceededError:
                # The deadline abandoned an in-flight round-trip, leaving the
                # server's eventual response unread: the stream is
                # desynchronized and reusing it would pair later requests
                # with stale answers.  Drop the client (it already closed its
                # transport) and reconnect lazily on the next request; the
                # 504 mapping for this request is unchanged.
                client, self._client = self._client, None
                if client is not None:
                    with contextlib.suppress(OSError):
                        await client.close()
                raise
            except (ConnectionError, OSError) as exc:
                client, self._client = self._client, None
                if client is not None:
                    await client.close()
                raise ServiceStoppedError(
                    "backend connection lost: %s" % (exc,), op=message.get("op")
                ) from exc

    @staticmethod
    def _deadline_for(message: dict[str, Any]) -> float | None:
        """Per-op budget: ``None`` defers to the channel's policy default."""
        if message.get("op") in ("drain", "snapshot", "restart_shard", "pool_sweep"):
            return 600.0
        return None

    async def ping(self, deadline: float) -> bool:
        """One bounded liveness probe; never raises.

        The outer ``wait_for`` also bounds time spent queueing behind an
        in-flight request on the channel lock: a wedged backend makes the
        health check answer "degraded", not hang.
        """
        try:
            return await asyncio.wait_for(self._ping_locked(deadline), deadline * 2.0)
        except Exception:  # noqa: BLE001 - a health probe reports, never raises
            return False

    async def _ping_locked(self, deadline: float) -> bool:
        async with self._lock:
            try:
                if self._client is None:
                    self._client = await ServiceClient.connect(  # reprolint: disable=RL003 -- bounded probe
                        self.host, self.port, retry=_BACKEND_RETRY, timeout=deadline
                    )
                # Deadline-bounded probe on the one-connection channel:
                # serializing peers behind it is the design, not the race.
                await self._client.request(  # reprolint: disable=RL003 -- bounded probe
                    {"op": "ping"}, deadline=deadline
                )
                return True
            except Exception:  # noqa: BLE001 - degraded, with cleanup
                client, self._client = self._client, None
                if client is not None:
                    with contextlib.suppress(OSError):
                        await client.close()
                return False

    async def close(self) -> None:
        async with self._lock:
            if self._client is not None:
                await self._client.close()
                self._client = None


def _decode_param(name: str, value: str) -> Any:
    if name == "fractions":
        try:
            return [float(part) for part in value.split(",") if part]
        except ValueError:
            raise _RouteError("BAD_REQUEST", "fractions must be comma-separated numbers") from None
    try:
        return json.loads(value)
    except ValueError:
        return value


class GatewayServer:
    """The HTTP gateway: translate REST requests into protocol messages.

    Args:
        backend_host: Host of the sketch server to front.
        backend_port: Port of the sketch server to front.
        host: Interface the gateway binds.
        port: Port to bind (0 picks a free port; see :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        backend_host: str = "127.0.0.1",
        backend_port: int = 7600,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.backend = _BackendChannel(backend_host, backend_port)
        self.host = host
        self.port = port
        self.requests_served = 0
        self._server: asyncio.AbstractServer | None = None
        self._shutdown_event = asyncio.Event()

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the HTTP listener (the backend connection opens lazily)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` is called."""
        if self._server is None:
            raise ServiceError("gateway is not started")
        await self._shutdown_event.wait()
        await self.stop()

    async def shutdown(self) -> None:
        self._shutdown_event.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.backend.close()

    async def __aenter__(self) -> GatewayServer:
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self._shutdown_event.set()
        await self.stop()

    # ------------------------------------------------------------------ HTTP
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
            body = json.dumps(payload).encode("utf-8")
            retry_after = ""
            if status == 503:
                retry_after = "Retry-After: %d\r\n" % _RETRY_AFTER_SECONDS
            writer.write(
                (
                    "HTTP/1.1 %d %s\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: %d\r\n"
                    "%s"
                    "Connection: close\r\n\r\n"
                    % (status, _REASONS.get(status, "Error"), len(body), retry_after)
                ).encode("ascii")
                + body
            )
            await writer.drain()
            self.requests_served += 1
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.wait_closed()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        op: str | None = None
        try:
            method, path, params, body = await self._read_request(reader)
            if path == ["v1", "healthz"]:
                self._require(method, "GET", "healthz")
                return await self._healthz()
            message = self._route(method, path, params, body)
            op = message.get("op")
            # The channel applies per-op deadlines itself (_deadline_for
            # plus _BACKEND_RETRY's overall budget).
            result = await self.backend.request(message)  # reprolint: disable=RL006
            return 200, {"ok": True, "result": result}
        except _RouteError as exc:
            envelope = {"code": exc.code, "message": str(exc), "op": op}
            return status_for_code(exc.code), {"ok": False, "error": envelope}
        except (ServiceError, ProtocolError) as exc:
            envelope = error_envelope(exc, op)
            return status_for_code(envelope["code"]), {"ok": False, "error": envelope}
        except Exception as exc:  # noqa: BLE001 - the gateway must answer
            envelope = {"code": "INTERNAL", "message": str(exc), "op": op}
            return 500, {"ok": False, "error": envelope}

    async def _healthz(self) -> tuple[int, dict[str, Any]]:
        """Liveness answer: 200 when the backend answers a bounded ping,
        503 (with ``Retry-After``) when it does not."""
        healthy = await self.backend.ping(_HEALTH_DEADLINE)
        if healthy:
            return 200, {"ok": True, "result": {"status": "healthy"}}
        return 503, {
            "ok": False,
            "error": {
                "code": "SERVICE_STOPPED",
                "message": "backend did not answer a ping within %.1f s" % _HEALTH_DEADLINE,
                "op": "ping",
            },
        }

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, list[str], dict[str, Any], dict[str, Any] | None]:
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise _RouteError("BAD_REQUEST", "malformed request line %r" % request_line)
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not header:
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _RouteError("BAD_REQUEST", "malformed Content-Length") from None
        if content_length > _MAX_BODY_BYTES:
            raise _RouteError("BAD_REQUEST", "request body too large")
        body: dict[str, Any] | None = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                raise _RouteError("BAD_REQUEST", "request body is not valid JSON") from None
            if not isinstance(decoded, dict):
                raise _RouteError("BAD_REQUEST", "request body must be a JSON object")
            body = decoded
        split = urlsplit(target)
        segments = [unquote(part) for part in split.path.split("/") if part]
        params = {name: _decode_param(name, value) for name, value in parse_qsl(split.query)}
        return method, segments, params, body

    # --------------------------------------------------------------- routing
    def _route(
        self,
        method: str,
        path: list[str],
        params: dict[str, Any],
        body: dict[str, Any] | None,
    ) -> dict[str, Any]:
        """Translate one HTTP request into one protocol message."""
        if not path or path[0] != "v1":
            raise _RouteError("NOT_FOUND", "unknown path (the API lives under /v1)")
        route = path[1:]
        if not route:
            raise _RouteError("NOT_FOUND", "no such resource")
        head = route[0]
        if head in ("info", "stats"):
            self._require(method, "GET", "/".join(route))
            return {"op": head}
        if head == "query" and len(route) == 2:
            self._require(method, "GET", "/".join(route))
            return dict(params, op=route[1])
        if head in ("ingest", "drain", "expire", "snapshot", "sweep") and len(route) == 1:
            self._require(method, "POST", head)
            op = "pool_sweep" if head == "sweep" else head
            return dict(body or {}, op=op)
        if head == "tenants":
            return self._route_tenants(method, route[1:], params, body)
        raise _RouteError("NOT_FOUND", "no such resource: %s" % "/".join(route))

    def _route_tenants(
        self,
        method: str,
        route: list[str],
        params: dict[str, Any],
        body: dict[str, Any] | None,
    ) -> dict[str, Any]:
        if not route:
            self._require(method, "GET", "tenants")
            return {"op": "tenant_list"}
        tenant = route[0]
        if len(route) == 1:
            if method == "PUT":
                message: dict[str, Any] = {"op": "tenant_create", "tenant": tenant}
                if body:
                    message["config"] = body
                return message
            if method == "GET":
                return {"op": "tenant_stats", "tenant": tenant}
            if method == "DELETE":
                return {"op": "tenant_delete", "tenant": tenant}
            raise _RouteError(
                "METHOD_NOT_ALLOWED", "tenants/{id} serves PUT, GET and DELETE, not %s" % method
            )
        action = route[1]
        if action == "query" and len(route) == 3:
            self._require(method, "GET", "tenants/{id}/query")
            return dict(params, op=route[2], tenant=tenant)
        if action in ("ingest", "drain", "expire", "snapshot") and len(route) == 2:
            self._require(method, "POST", "tenants/{id}/%s" % action)
            return dict(body or {}, op=action, tenant=tenant)
        raise _RouteError("NOT_FOUND", "no such tenant resource: %s" % "/".join(route))

    @staticmethod
    def _require(method: str, expected: str, resource: str) -> None:
        if method != expected:
            raise _RouteError(
                "METHOD_NOT_ALLOWED", "%s serves %s, not %s" % (resource, expected, method)
            )


async def run_gateway(
    backend_host: str = "127.0.0.1",
    backend_port: int = 7600,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready: Callable[[int], None] | None = None,
    label: str = "repro-gateway",
) -> int:
    """Boot a gateway, serve until SIGTERM/SIGINT, return an exit code."""
    gateway = GatewayServer(backend_host, backend_port, host=host, port=port)
    await gateway.start()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, gateway._shutdown_event.set)
            installed.append(signum)
    try:
        print(
            "%s: listening on %s:%d (backend %s:%d)"
            % (label, gateway.host, gateway.port, backend_host, backend_port),
            flush=True,
        )
        if ready is not None:
            ready(gateway.port)
        await gateway.serve_until_shutdown()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
    print("%s: stopped (%d requests served)" % (label, gateway.requests_served), flush=True)
    return 0
