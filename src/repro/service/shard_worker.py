"""Worker processes of the sharded serving tier.

Each shard worker is a full, unmodified sketch service — a
:class:`~repro.service.core.SketchService` behind a
:class:`~repro.service.server.SketchServer` — running in its own process and
owning one partition of the key universe (or of the sites, in multisite
mode).  The router (:mod:`repro.service.router`) talks to workers over the
same newline-delimited-JSON protocol every other client uses, so a worker is
indistinguishable from a standalone server: it validates clocks against its
own high-water mark, micro-batches ingest, answers queries, snapshots to an
explicit per-shard path on request, and restores from that snapshot through
the ordinary ``run_server(restore=...)`` path (the wire-format state
transfer of :mod:`repro.serialization`, shared with the distributed runner).

Workers are spawned with the ``spawn`` start method: the router process runs
an asyncio loop plus executor threads, and forking such a process inherits
locks in unknown states.  The freshly spawned interpreter re-imports
:mod:`repro` (so the package must be importable in the child — via an
installed distribution or an inherited ``PYTHONPATH``), builds the worker's
service from a plain-dictionary config, binds an ephemeral port, and
announces ``(pid, port)`` back through a one-shot pipe.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import multiprocessing.connection
import os
import signal
import sys
import time
from dataclasses import replace

from ..distributed.runner import plan_shards
from .config import ServiceConfig
from .errors import ServiceError, ShardUnavailableError
from .journal import journal_dir_for_shard

__all__ = ["ShardUnavailableError", "ShardProcess", "worker_config", "sites_of_shard"]

#: Start method of worker processes (see module docstring for why not fork).
_SPAWN = multiprocessing.get_context("spawn")

#: How long a spawned worker may take to announce its port.  Spawn boots a
#: fresh interpreter and imports NumPy; heavily loaded single-core CI
#: machines take seconds, not milliseconds.
_READY_TIMEOUT = 120.0


def sites_of_shard(sites: int, shards: int, shard_id: int) -> range:
    """Global site ids owned by one shard (contiguous blocks, like the
    distributed runner's :func:`~repro.distributed.runner.plan_shards`)."""
    plan = plan_shards(sites, shards)[shard_id]
    return range(plan.node_ids[0], plan.node_ids[-1] + 1)


def worker_config(config: ServiceConfig, shard_id: int) -> ServiceConfig:
    """Derive one worker's configuration from the router's.

    The worker is a plain single-process service (``shards=None``) with the
    same sketch parameters — identical epsilon/window/backend *and hash seed*,
    which is what makes per-shard states mergeable (Theorem 4 requires
    matching dimensions and seeds).  Persistence knobs are stripped: the
    router drives every snapshot through explicit per-shard paths, so workers
    never write on their own schedule.  In multisite mode the worker's
    coordinator spans only the sites its shard owns.

    In pool mode each worker runs its own :class:`~repro.service.pool
    .TenantPool` over the tenants hashed to its shard: the pool directory
    becomes a per-shard subdirectory and the memory budget is split evenly
    across workers (each worker governs only the tenants it owns).
    """
    if config.shards is None:
        raise ServiceError("worker_config requires a sharded configuration")
    sites = config.sites
    if config.mode == "multisite":
        sites = len(sites_of_shard(config.sites, config.shards, shard_id))
    pool_dir = config.pool_dir
    budget = config.memory_budget_bytes
    if config.pool and pool_dir is not None:
        pool_dir = os.path.join(pool_dir, "shard%d" % shard_id)
        if budget is not None:
            budget = max(1, budget // config.shards)
    journal_dir = config.journal_dir
    if journal_dir is not None:
        # One write-ahead journal per worker, keyed by shard id so a
        # respawned worker finds exactly its own acked tail.
        journal_dir = journal_dir_for_shard(journal_dir, shard_id)
    return replace(
        config,
        shards=None,
        sites=sites,
        snapshot_every=None,
        snapshot_path=None,
        pool_dir=pool_dir,
        memory_budget_bytes=budget,
        journal_dir=journal_dir,
        # Supervision lives in the router; a worker is a plain service.
        supervise=False,
    )


def _shard_worker_main(
    config_payload: dict,
    host: str,
    restore: str | None,
    label: str,
    connection: multiprocessing.connection.Connection,
) -> None:
    """Entry point of a spawned worker process."""
    from .server import run_server

    config = ServiceConfig.from_dict(config_payload)

    def ready(port: int) -> None:
        connection.send({"pid": os.getpid(), "port": port})
        connection.close()

    code = asyncio.run(
        run_server(config, host=host, port=0, restore=restore, ready=ready, label=label)
    )
    sys.exit(code)


class ShardProcess:
    """Handle on one spawned shard-worker process.

    Args:
        shard_id: Index of the shard this worker owns.
        config: The *worker's* configuration (already derived through
            :func:`worker_config`).
        host: Interface the worker binds (ephemeral port).
        restore: Per-shard snapshot to restore from on boot.
    """

    def __init__(
        self,
        shard_id: int,
        config: ServiceConfig,
        host: str = "127.0.0.1",
        restore: str | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.config = config
        self.host = host
        self.restore = restore
        self.port: int | None = None
        receive_end, send_end = _SPAWN.Pipe(duplex=False)
        self._ready_connection = receive_end
        self.process = _SPAWN.Process(
            target=_shard_worker_main,
            args=(config.to_dict(), host, restore, "repro-shard%d" % shard_id, send_end),
            name="repro-shard%d" % shard_id,
            daemon=True,
        )
        self.process.start()
        # The child holds its own duplicate of the send end; closing ours
        # makes a worker crash surface as EOF on the receive end instead of
        # a silent hang.
        send_end.close()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def is_alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exitcode(self) -> int | None:
        return self.process.exitcode

    async def wait_ready(self, timeout: float = _READY_TIMEOUT) -> int:
        """Wait for the worker's port announcement; returns the port.

        Polls the pipe with short event-loop yields (the connection has no
        asyncio integration) and watches the process itself, so a worker
        that dies during boot fails fast instead of timing out.
        """
        deadline = time.monotonic() + timeout
        while True:
            if self._ready_connection.poll(0):
                try:
                    payload = self._ready_connection.recv()
                except EOFError:
                    raise ShardUnavailableError(
                        "shard %d worker closed its ready pipe without announcing "
                        "a port (exit code %r)" % (self.shard_id, self.exitcode)
                    ) from None
                self._ready_connection.close()
                self.port = int(payload["port"])
                return self.port
            if not self.process.is_alive():
                raise ShardUnavailableError(
                    "shard %d worker exited during boot (exit code %r)"
                    % (self.shard_id, self.exitcode)
                )
            if time.monotonic() > deadline:
                self.kill()
                raise ShardUnavailableError(
                    "shard %d worker did not become ready within %.0f s"
                    % (self.shard_id, timeout)
                )
            await asyncio.sleep(0.02)

    def kill(self) -> None:
        """SIGKILL the worker (fault injection / last-resort cleanup)."""
        if self.process.is_alive():
            self.process.kill()

    def terminate(self) -> None:
        """SIGTERM the worker (its server drains and exits gracefully)."""
        if self.process.is_alive():
            os.kill(self.process.pid, signal.SIGTERM)  # type: ignore[arg-type]

    async def join(self, timeout: float = 30.0) -> int | None:
        """Wait (without blocking the loop) for the process to exit."""
        deadline = time.monotonic() + timeout
        while self.process.is_alive() and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self.process.is_alive():
            return None
        self.process.join(0)
        return self.process.exitcode
