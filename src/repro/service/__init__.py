"""Long-running sketch service: concurrent ingest/query over a live ECM-sketch.

Every layer below this package runs as a finish-then-report batch job.  The
paper's setting, however, is a *live* one: coordinators answer sliding-window
queries at any time over continuously arriving streams.  This package is that
serving path:

* :class:`~repro.service.core.SketchService` — owns the live sketch state
  (a flat :class:`~repro.core.ecm_sketch.ECMSketch`, a
  :class:`~repro.queries.hierarchical.HierarchicalECMSketch`, or a multi-site
  :class:`~repro.distributed.continuous.PeriodicAggregationCoordinator`)
  behind a bounded ingest queue.  Arrivals are micro-batched into ``add_many``
  calls; queries are answered from the live state between batches; background
  tasks run periodic ``expire`` sweeps and snapshots.
* :class:`~repro.service.server.SketchServer` — a newline-delimited-JSON TCP
  front end (``asyncio.start_server``) with graceful drain-on-shutdown.
* :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.SyncServiceClient` — thin protocol clients.
* :mod:`~repro.service.snapshot` — atomic snapshot/restore of the whole
  service state on the existing serialization wire format.
* :mod:`~repro.service.replay` — a load driver that replays a generated
  stream at a target rate (optionally over several shard-affine connections)
  and reports achieved throughput and query latency.
* :mod:`~repro.service.router` / :mod:`~repro.service.shard_worker` — the
  sharded serving tier: a front-end :class:`~repro.service.router.ShardRouter`
  hash-partitions the key universe (or the sites) across worker processes,
  each a full service, and answers queries by merging per-shard estimates
  (the paper's Theorem 4 order-preserving aggregation).
* :mod:`~repro.service.launch` — subprocess harness booting ``repro serve``
  with banner-based (not poll-based) readiness for tests and benchmarks.

The CLI front ends are ``repro serve`` (``--shards N`` for the sharded tier)
and ``repro replay`` (``--connections M`` for concurrent ingest).
"""

from .config import ServiceConfig
from .core import IngestRejectedError, ServiceStoppedError, SketchService
from .client import ServiceClient, SyncServiceClient, wait_for_server
from .launch import ServeProcess, repro_env
from .protocol import MAX_LINE_BYTES, ProtocolError, decode_line, encode_message
from .replay import ReplayReport, build_replay_stream, run_replay
from .router import (
    LocalShardBackend,
    ProcessShardBackend,
    ShardRouter,
    shard_column,
    shard_of,
)
from .server import SketchServer, dispatch_service_op, run_server
from .shard_worker import ShardProcess, ShardUnavailableError, sites_of_shard, worker_config
from .snapshot import load_snapshot, service_state_from_snapshot, snapshot_payload, write_snapshot

__all__ = [
    "ServiceConfig",
    "SketchService",
    "IngestRejectedError",
    "ServiceStoppedError",
    "SketchServer",
    "run_server",
    "dispatch_service_op",
    "ServiceClient",
    "SyncServiceClient",
    "wait_for_server",
    "ServeProcess",
    "repro_env",
    "ProtocolError",
    "MAX_LINE_BYTES",
    "encode_message",
    "decode_line",
    "ReplayReport",
    "build_replay_stream",
    "run_replay",
    "ShardRouter",
    "LocalShardBackend",
    "ProcessShardBackend",
    "shard_of",
    "shard_column",
    "ShardProcess",
    "ShardUnavailableError",
    "sites_of_shard",
    "worker_config",
    "snapshot_payload",
    "write_snapshot",
    "load_snapshot",
    "service_state_from_snapshot",
]
