"""Long-running sketch service: concurrent ingest/query over a live ECM-sketch.

Every layer below this package runs as a finish-then-report batch job.  The
paper's setting, however, is a *live* one: coordinators answer sliding-window
queries at any time over continuously arriving streams.  This package is that
serving path:

* :class:`~repro.service.core.SketchService` — owns the live sketch state
  (a flat :class:`~repro.core.ecm_sketch.ECMSketch`, a
  :class:`~repro.queries.hierarchical.HierarchicalECMSketch`, or a multi-site
  :class:`~repro.distributed.continuous.PeriodicAggregationCoordinator`)
  behind a bounded ingest queue.  Arrivals are micro-batched into ``add_many``
  calls; queries are answered from the live state between batches; background
  tasks run periodic ``expire`` sweeps and snapshots.
* :class:`~repro.service.server.SketchServer` — a newline-delimited-JSON TCP
  front end (``asyncio.start_server``) with graceful drain-on-shutdown.
* :class:`~repro.service.pool.TenantPool` — the multi-tenant pool: a SQLite
  tenant catalog, per-tenant sketch services, and a memory governor that
  evicts least-recently-touched tenants to snapshots under a byte budget and
  restores them lazily (byte-identically) on the next touch.
* :class:`~repro.service.gateway.GatewayServer` — the HTTP/REST face: maps
  REST routes under ``/v1`` onto protocol messages and protocol error codes
  onto HTTP statuses.
* :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.SyncServiceClient` — the typed client layer
  (sync wraps async; results are :mod:`~repro.service.models` dataclasses,
  failures are :mod:`~repro.service.errors` exceptions).
* :mod:`~repro.service.snapshot` — atomic snapshot/restore of the whole
  service state on the existing serialization wire format.
* :mod:`~repro.service.replay` — a load driver that replays a generated
  stream at a target rate (optionally over several shard-affine connections)
  and reports achieved throughput and query latency.
* :mod:`~repro.service.router` / :mod:`~repro.service.shard_worker` — the
  sharded serving tier: a front-end :class:`~repro.service.router.ShardRouter`
  hash-partitions the key universe (or the sites) across worker processes,
  each a full service, and answers queries by merging per-shard estimates
  (the paper's Theorem 4 order-preserving aggregation).  ``--pool`` composes:
  tenants are hashed across workers, each worker running its own pool.
* :mod:`~repro.service.launch` — subprocess harness booting ``repro serve``
  with banner-based (not poll-based) readiness for tests and benchmarks.

The CLI front ends are ``repro serve`` (``--shards N`` for the sharded tier,
``--pool --pool-dir D --memory-budget B`` for the tenant pool), ``repro
gateway`` (the REST front), and ``repro replay`` (``--connections M`` for
concurrent ingest).
"""

from . import failpoints
from .config import ServiceConfig
from .core import IngestRejectedError, ServiceStoppedError, SketchService
from .client import (
    RetryPolicy,
    ServiceClient,
    ServiceRequestError,
    SyncServiceClient,
    wait_for_server,
)
from .errors import (
    ERROR_CODES,
    BadRequestError,
    ClockRegressionError,
    DeadlineExceededError,
    EmptyStateError,
    InvalidParameterError,
    ModeMismatchError,
    PoolDisabledError,
    ServiceError,
    TenantEvictedError,
    TenantExistsError,
    TenantNotFoundError,
    TenantRequiredError,
    UnknownOperationError,
    VersionMismatchError,
    error_envelope,
    exception_for_error,
)
from .gateway import STATUS_FOR_CODE, GatewayServer, run_gateway, status_for_code
from .journal import IngestJournal, JournalRecord, journal_dir_for_shard
from .launch import ServeProcess, repro_env
from .models import HeavyHitter, ServerInfo, ServerStats, TenantDescription, TenantStats
from .pool import TENANT_CONFIG_KEYS, TenantCatalog, TenantPool
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    check_protocol_version,
    decode_line,
    encode_message,
    protocol_major,
)
from .replay import ReplayReport, build_replay_stream, run_replay
from .router import (
    LocalShardBackend,
    ProcessShardBackend,
    ShardRouter,
    shard_column,
    shard_of,
)
from .server import SketchServer, dispatch_service_op, run_server
from .shard_worker import ShardProcess, ShardUnavailableError, sites_of_shard, worker_config
from .snapshot import load_snapshot, service_state_from_snapshot, snapshot_payload, write_snapshot
from .supervision import DEGRADED, HEALTHY, RECOVERING, ShardSupervisor

__all__ = [
    "ServiceConfig",
    "SketchService",
    "SketchServer",
    "run_server",
    "dispatch_service_op",
    # clients + typed results
    "ServiceClient",
    "SyncServiceClient",
    "RetryPolicy",
    "wait_for_server",
    "HeavyHitter",
    "ServerInfo",
    "ServerStats",
    "TenantDescription",
    "TenantStats",
    # errors
    "ServiceError",
    "ServiceRequestError",
    "BadRequestError",
    "UnknownOperationError",
    "InvalidParameterError",
    "ModeMismatchError",
    "EmptyStateError",
    "IngestRejectedError",
    "ClockRegressionError",
    "ServiceStoppedError",
    "ShardUnavailableError",
    "DeadlineExceededError",
    "VersionMismatchError",
    "PoolDisabledError",
    "TenantRequiredError",
    "TenantNotFoundError",
    "TenantExistsError",
    "TenantEvictedError",
    "ERROR_CODES",
    "error_envelope",
    "exception_for_error",
    # protocol
    "ProtocolError",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "protocol_major",
    "check_protocol_version",
    "encode_message",
    "decode_line",
    # pool
    "TenantPool",
    "TenantCatalog",
    "TENANT_CONFIG_KEYS",
    # gateway
    "GatewayServer",
    "run_gateway",
    "STATUS_FOR_CODE",
    "status_for_code",
    # harness + replay
    "ServeProcess",
    "repro_env",
    "ReplayReport",
    "build_replay_stream",
    "run_replay",
    # sharded tier
    "ShardRouter",
    "LocalShardBackend",
    "ProcessShardBackend",
    "shard_of",
    "shard_column",
    "ShardProcess",
    "sites_of_shard",
    "worker_config",
    # fault tolerance
    "IngestJournal",
    "JournalRecord",
    "journal_dir_for_shard",
    "ShardSupervisor",
    "HEALTHY",
    "DEGRADED",
    "RECOVERING",
    "failpoints",
    # snapshots
    "snapshot_payload",
    "write_snapshot",
    "load_snapshot",
    "service_state_from_snapshot",
]
