"""Typed service errors and the machine-readable error-code registry.

Every failure the service surfaces — over the NDJSON TCP protocol, the HTTP
gateway, or in-process — is one exception type from this module, carrying a
stable machine-readable ``code``.  The wire form is one envelope shape::

    {"ok": false, "error": {"code": "CLOCK_REGRESSION", "message": "...", "op": "ingest"}}

shared by the TCP server, the shard router (worker errors re-raise as the
same typed exception on the router side) and the HTTP gateway (which maps
``code`` to an HTTP status).  Clients rebuild the typed exception from the
envelope via :func:`exception_for_error`, so ``except TenantNotFoundError``
works identically against an in-process service and a remote one.

The registry (:data:`ERROR_CODES`) is the single source of truth: every code
maps to its exception class and a one-line description (rendered into
``docs/api.md``); the gateway's HTTP status table is keyed on the same codes.
"""

from __future__ import annotations

from typing import Any, ClassVar

from ..core.errors import ConfigurationError, EmptyStructureError

__all__ = [
    "ServiceError",
    "ServiceRequestError",
    "ProtocolError",
    "BadRequestError",
    "UnknownOperationError",
    "InvalidParameterError",
    "ModeMismatchError",
    "EmptyStateError",
    "IngestRejectedError",
    "ClockRegressionError",
    "ServiceStoppedError",
    "ShardUnavailableError",
    "DeadlineExceededError",
    "VersionMismatchError",
    "PoolDisabledError",
    "TenantRequiredError",
    "TenantNotFoundError",
    "TenantExistsError",
    "TenantEvictedError",
    "ERROR_CODES",
    "error_envelope",
    "exception_for_error",
]


class ServiceError(Exception):
    """Base class of service-level failures.

    Every subclass pins a stable machine-readable ``code``; an instance may
    carry the operation (``op``) it failed, which travels in the envelope.
    """

    code: ClassVar[str] = "INTERNAL"

    def __init__(self, message: str = "", op: str | None = None) -> None:
        super().__init__(message)
        self.op = op


class ServiceRequestError(ServiceError):
    """A request was rejected (any ``ok: false`` response).

    The catch-all clients raise for responses whose code has no dedicated
    class (e.g. talking to a newer server); typed rejections below subclass
    it, so ``except ServiceRequestError`` stays the broad client-side net.
    A received unknown code is preserved on the instance via ``wire_code``.
    """

    def __init__(
        self, message: str = "", op: str | None = None, wire_code: str | None = None
    ) -> None:
        super().__init__(message, op=op)
        if wire_code is not None:
            # Shadow the class attribute so .code reflects what the server sent.
            self.code = wire_code  # type: ignore[misc]


class ProtocolError(ServiceError):
    """A malformed protocol line or message."""

    code = "PROTOCOL"


class BadRequestError(ServiceRequestError):
    """A structurally invalid request (wrong types, missing fields)."""

    code = "BAD_REQUEST"


class UnknownOperationError(BadRequestError):
    """The request named an operation this server does not serve."""

    code = "UNKNOWN_OP"


class InvalidParameterError(BadRequestError):
    """A parameter is missing or outside its valid range."""

    code = "INVALID_PARAMETER"


class ModeMismatchError(ServiceRequestError):
    """The operation is not served by the target's service mode."""

    code = "MODE_MISMATCH"


class EmptyStateError(ServiceRequestError):
    """The query is undefined on empty state (e.g. quantile of nothing).

    Client-side face of :class:`repro.core.errors.EmptyStructureError`.
    """

    code = "EMPTY_STRUCTURE"


class IngestRejectedError(ServiceRequestError):
    """An ingest chunk failed validation and was not enqueued."""

    code = "INGEST_REJECTED"


class ClockRegressionError(IngestRejectedError):
    """An arrival clock ran behind the relevant high-water mark."""

    code = "CLOCK_REGRESSION"


class ServiceStoppedError(ServiceRequestError):
    """The service is draining or stopped and accepts no new work."""

    code = "SERVICE_STOPPED"


class ShardUnavailableError(ServiceRequestError):
    """A shard worker is dead or unreachable; the request was not served."""

    code = "SHARD_UNAVAILABLE"


class DeadlineExceededError(ServiceRequestError):
    """An operation ran past its deadline and was abandoned.

    Raised client-side when a per-operation deadline expires before the
    response arrives, and router-side when a shard fan-out exceeds its
    budget.  The request may or may not have been applied by the server;
    idempotent retries (ingest with ``client``/``seq``) are safe.
    """

    code = "DEADLINE_EXCEEDED"


class VersionMismatchError(ServiceRequestError):
    """Client and server speak incompatible protocol majors."""

    code = "VERSION_MISMATCH"


class PoolDisabledError(ServiceRequestError):
    """A tenant-namespaced request reached a server without a tenant pool."""

    code = "POOL_DISABLED"


class TenantRequiredError(BadRequestError):
    """A pooled server requires a ``tenant`` on this operation."""

    code = "TENANT_REQUIRED"


class TenantNotFoundError(ServiceRequestError):
    """The named tenant does not exist in the catalog."""

    code = "TENANT_NOT_FOUND"


class TenantExistsError(ServiceRequestError):
    """Tenant creation collided with an existing catalog entry."""

    code = "TENANT_EXISTS"


class TenantEvictedError(ServiceRequestError):
    """An evicted tenant could not be restored (snapshot missing/corrupt)."""

    code = "TENANT_EVICTED"


#: Error-code registry: code -> (exception class, one-line description).
#: Rendered into docs/api.md; the gateway's HTTP status table covers exactly
#: these codes (pinned by tests).
ERROR_CODES: dict[str, tuple] = {
    "PROTOCOL": (ProtocolError, "Malformed protocol line or message (not valid single-line JSON)."),
    "BAD_REQUEST": (BadRequestError, "Structurally invalid request: wrong types or missing fields."),
    "UNKNOWN_OP": (UnknownOperationError, "The request named an operation this server does not serve."),
    "INVALID_PARAMETER": (
        InvalidParameterError,
        "A parameter is missing or outside its valid range.",
    ),
    "MODE_MISMATCH": (ModeMismatchError, "Operation not served by the target's service mode."),
    "EMPTY_STRUCTURE": (EmptyStateError, "Query undefined on empty state (no in-range arrivals)."),
    "INGEST_REJECTED": (IngestRejectedError, "Ingest chunk failed validation; nothing was enqueued."),
    "CLOCK_REGRESSION": (
        ClockRegressionError,
        "Arrival clock ran behind the high-water mark; clocks must be non-decreasing.",
    ),
    "SERVICE_STOPPED": (ServiceStoppedError, "Service is draining or stopped; no new work accepted."),
    "SHARD_UNAVAILABLE": (ShardUnavailableError, "A shard worker is dead or unreachable."),
    "DEADLINE_EXCEEDED": (
        DeadlineExceededError,
        "The operation ran past its deadline before a response arrived.",
    ),
    "VERSION_MISMATCH": (
        VersionMismatchError,
        "Client and server speak incompatible protocol majors.",
    ),
    "POOL_DISABLED": (PoolDisabledError, "Tenant-namespaced request on a server without a pool."),
    "TENANT_REQUIRED": (TenantRequiredError, "A pooled server requires 'tenant' on this operation."),
    "TENANT_NOT_FOUND": (TenantNotFoundError, "The named tenant does not exist in the catalog."),
    "TENANT_EXISTS": (TenantExistsError, "Tenant creation collided with an existing entry."),
    "TENANT_EVICTED": (
        TenantEvictedError,
        "Evicted tenant could not be restored: snapshot missing or corrupt.",
    ),
    "INTERNAL": (ServiceRequestError, "Unexpected server-side failure."),
}

_CODE_TO_EXCEPTION: dict[str, type[ServiceRequestError]] = {
    code: cls for code, (cls, _description) in ERROR_CODES.items() if code != "INTERNAL"
}


def error_envelope(exc: BaseException, op: str | None = None) -> dict[str, Any]:
    """Build the wire-form error envelope for one exception.

    Exceptions outside the service hierarchy map onto stable codes too:
    :class:`~repro.core.errors.ConfigurationError` (bad parameter values) to
    ``INVALID_PARAMETER``, :class:`~repro.core.errors.EmptyStructureError`
    to ``EMPTY_STRUCTURE``, and plain ``TypeError``/``ValueError``/
    ``KeyError`` to ``BAD_REQUEST``.
    """
    if isinstance(exc, ServiceError):
        code = exc.code
        if op is None:
            op = exc.op
    elif isinstance(exc, ConfigurationError):
        code = "INVALID_PARAMETER"
    elif isinstance(exc, EmptyStructureError):
        code = "EMPTY_STRUCTURE"
    elif isinstance(exc, (TypeError, ValueError, KeyError)):
        code = "BAD_REQUEST"
    else:
        code = "INTERNAL"
    return {"code": code, "message": str(exc), "op": op}


def exception_for_error(error: Any, prefix: str | None = None) -> ServiceRequestError:
    """Rebuild the typed exception for one received error payload.

    Accepts the structured envelope (``{"code", "message", "op"}``) and, for
    compatibility with pre-v2 servers, a bare error string.  Unknown codes
    come back as plain :class:`ServiceRequestError` with the received code
    preserved, so a client one release behind still fails typed-ish instead
    of crashing on the envelope.

    Args:
        error: The ``error`` field of an ``ok: false`` response.
        prefix: Optional message prefix (the router names the shard here).
    """
    if isinstance(error, dict):
        code = error.get("code")
        message = str(error.get("message", "unknown server error"))
        op = error.get("op")
        if not isinstance(op, str):
            op = None
    else:
        code = None
        message = str(error) if error is not None else "unknown server error"
        op = None
    if prefix:
        message = "%s: %s" % (prefix, message)
    if isinstance(code, str):
        cls = _CODE_TO_EXCEPTION.get(code)
        if cls is not None:
            exc = cls(message, op=op)
            return exc
        return ServiceRequestError(message, op=op, wire_code=code)
    return ServiceRequestError(message, op=op)
