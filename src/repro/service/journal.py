"""Write-ahead ingest journal for the serving tier.

Every validated ingest chunk is appended to an NDJSON journal *before* the
server acks it, so a crashed worker can be rebuilt as *snapshot + journal
tail* with no acked record lost.  The journal is epoch-aligned with the
snapshot cycle: each snapshot rotates the journal to a fresh
``wal.<epoch>.ndjson`` file, and recovery replays only the epochs at or
after the restored snapshot's journal position.

File format (one JSON object per line)::

    {"c": <crc32 of the compact record JSON>, "r": {"kind": "header", ...}}
    {"c": ..., "r": {"kind": "ingest", "jseq": 1, "site": 0, "keys": [...],
                     "clocks": [...], "values": null,
                     "client": "<uuid>", "seq": 7}}

* ``jseq`` is the journal-global sequence number, strictly increasing
  across epochs; the snapshot stores the last *applied* ``jseq`` so replay
  can skip records the snapshot already contains.
* The CRC covers the compact (``separators=(",", ":")``, ``sort_keys``)
  JSON encoding of the ``r`` payload, so torn or bit-flipped lines are
  detected without trusting line framing alone.
* A torn tail (partial last line, bad CRC, or a ``jseq`` regression) is
  *truncated*, never fatal: everything after the first bad record is
  discarded — by the write-ahead contract those records were never acked,
  or were acked and fsynced earlier in an intact prefix.

Durability posture: appends are flushed to the OS (``file.flush``) on every
record, which makes them SIGKILL-durable — the crash mode the supervisor
heals — but not power-loss-durable.  ``fsync_each=True`` upgrades to a
per-append ``os.fsync`` for callers that want the stronger contract and can
afford the throughput cost; it also fsyncs the journal *directory* whenever
an epoch file is created, so the new file's directory entry survives power
loss too.  Rotation always fsyncs before switching files.

All methods do blocking file I/O and are meant to be called from the
service's single-thread journal executor, never directly on the event loop
(the same escape hatch the tenant catalog uses).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Any

from . import failpoints

__all__ = ["IngestJournal", "JournalRecord", "journal_dir_for_shard"]

_FILE_PATTERN = re.compile(r"^wal\.(\d+)\.ndjson$")

#: Journal file format version (bump on incompatible record changes).
JOURNAL_VERSION = 1


def journal_dir_for_shard(base: str, shard: int) -> str:
    """Per-shard journal directory under a tier-level base directory."""
    return os.path.join(base, "shard%d" % (shard,))


class JournalRecord:
    """One recovered ingest record, decoded and CRC-verified."""

    __slots__ = ("jseq", "site", "keys", "clocks", "values", "client_id", "seq")

    def __init__(self, payload: dict[str, Any]) -> None:
        self.jseq = int(payload["jseq"])
        self.site = int(payload["site"])
        self.keys: list[Any] = payload["keys"]
        self.clocks: list[int] = payload["clocks"]
        self.values: list[float] | None = payload["values"]
        self.client_id: str | None = payload.get("client")
        self.seq: int | None = payload.get("seq")


def _encode(payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(body.encode("utf-8"))
    return ('{"c":%d,"r":%s}\n' % (crc, body)).encode("utf-8")


def _decode(line: bytes) -> dict[str, Any] | None:
    """Decode one journal line; ``None`` means torn/corrupt."""
    try:
        wrapper = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(wrapper, dict) or "c" not in wrapper or "r" not in wrapper:
        return None
    payload = wrapper["r"]
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    if zlib.crc32(body.encode("utf-8")) != wrapper["c"]:
        return None
    if not isinstance(payload, dict):
        return None
    return payload


class IngestJournal:
    """Append-only, epoch-rotated NDJSON write-ahead log for one service."""

    def __init__(self, directory: str | Path, *, fsync_each: bool = False) -> None:
        self.directory = Path(directory)
        self.fsync_each = fsync_each
        self.epoch = 0
        self.next_jseq = 1
        self.records_appended = 0
        self.records_replayed = 0
        self.truncations = 0
        self._file: Any = None
        # Highest jseq each closed epoch holds (populated by recover() and
        # at rotation): the deletion fence — an epoch may only be unlinked
        # once a snapshot's applied position has passed its tail, or a
        # journaled-but-still-queued record would lose its epoch file.
        self._epoch_tails: dict[int, int] = {}

    # -- recovery ---------------------------------------------------------

    def _epoch_files(self) -> list[tuple[int, Path]]:
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _FILE_PATTERN.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        found.sort()
        return found

    def recover(self, after_jseq: int = 0) -> list[JournalRecord]:
        """Replay intact records with ``jseq > after_jseq``, healing damage.

        Walks every epoch file in order, CRC-checking each line and
        enforcing strictly increasing ``jseq``.  The first bad record
        truncates its file in place and deletes all later epochs (they
        were written after the corruption point and cannot be trusted to
        be contiguous).  After recovery, ``epoch``/``next_jseq`` point past
        the last intact record, so the next append continues the sequence.
        """
        records: list[JournalRecord] = []
        last_jseq = 0
        truncated = False
        for epoch, path in self._epoch_files():
            if truncated:
                path.unlink()
                continue
            self.epoch = max(self.epoch, epoch)
            offset = 0
            with open(path, "rb") as handle:
                for line in handle:
                    payload = _decode(line) if line.endswith(b"\n") else None
                    if payload is None:
                        truncated = True
                        break
                    kind = payload.get("kind")
                    if kind == "header":
                        offset += len(line)
                        continue
                    if kind != "ingest":
                        truncated = True
                        break
                    record = JournalRecord(payload)
                    if record.jseq <= last_jseq:
                        truncated = True
                        break
                    offset += len(line)
                    last_jseq = record.jseq
                    if record.jseq > after_jseq:
                        self.records_replayed += 1
                        records.append(record)
            self._epoch_tails[epoch] = last_jseq
            if truncated:
                # Truncate in place (to zero for whole-file damage — the
                # empty file keeps this epoch number from being reused).
                self.truncations += 1
                with open(path, "r+b") as handle:
                    handle.truncate(offset)
                    handle.flush()
                    os.fsync(handle.fileno())
        self.next_jseq = max(self.next_jseq, last_jseq + 1)
        return records

    # -- appending --------------------------------------------------------

    def _path_for(self, epoch: int) -> Path:
        return self.directory / ("wal.%d.ndjson" % (epoch,))

    def open_for_append(self) -> None:
        """Open (creating if needed) the current epoch file for appends."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path_for(self.epoch)
        fresh = not path.exists() or path.stat().st_size == 0
        self._file = open(path, "ab")
        if fresh:
            self._write_header()
            if self.fsync_each:
                # Per-record fsync promises power-loss durability, which the
                # file's own fsync alone cannot deliver for a *new* file: the
                # directory entry is metadata of the directory, so it must be
                # fsynced too or the freshly created epoch can vanish whole.
                os.fsync(self._file.fileno())
                self._fsync_directory()

    def _fsync_directory(self) -> None:
        """Flush the journal directory's entries (new-file durability)."""
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _write_header(self) -> None:
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "epoch": self.epoch,
        }
        self._file.write(_encode(header))
        self._file.flush()

    def append(
        self,
        site: int,
        keys: list[Any],
        clocks: list[int],
        values: list[float] | None,
        client_id: str | None,
        seq: int | None,
    ) -> int:
        """Append one validated ingest chunk; returns its ``jseq``.

        Must complete before the chunk is acked — that ordering is the
        entire write-ahead contract.
        """
        if self._file is None:
            raise RuntimeError("journal is not open for append")
        jseq = self.next_jseq
        payload: dict[str, Any] = {
            "kind": "ingest",
            "jseq": jseq,
            "site": site,
            "keys": keys,
            "clocks": clocks,
            "values": values,
        }
        if client_id is not None:
            payload["client"] = client_id
            payload["seq"] = seq
        encoded = _encode(payload)
        torn = failpoints.fire("journal.append")
        if torn is not None and torn[0] == "torn":
            # Tear the write mid-record: half the bytes reach the file, the
            # trailing newline never does — exactly what a crash mid-append
            # leaves behind.
            self._file.write(encoded[: max(1, len(encoded) // 2)])
            self._file.flush()
            os.fsync(self._file.fileno())
            raise OSError("failpoint journal.append: torn write injected")
        self._file.write(encoded)
        self._file.flush()
        if self.fsync_each:
            os.fsync(self._file.fileno())
        self.next_jseq = jseq + 1
        self.records_appended += 1
        return jseq

    # -- rotation ---------------------------------------------------------

    def rotate(self, applied_jseq: int | None = None) -> None:
        """Start a new epoch file; delete epochs the snapshot has covered.

        Called right after a snapshot lands.  ``applied_jseq`` is the
        journal position that snapshot captured: an epoch is deleted only
        when it is older than the previous one (the previous epoch is kept
        as cheap insurance for a crash between the snapshot write and this
        rotation) *and* its last record is at or below ``applied_jseq``.
        The second fence matters under backpressure: a chunk journaled —
        and acked — epochs ago can still be sitting queued-unapplied, in
        which case its ``jseq`` is past every snapshot taken so far and
        its epoch file must survive until a snapshot finally covers it.
        ``applied_jseq=None`` (position unknown) deletes nothing.
        """
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None
        self._epoch_tails[self.epoch] = self.next_jseq - 1
        self.epoch += 1
        for epoch, path in self._epoch_files():
            if epoch >= self.epoch - 1:
                continue
            tail = self._epoch_tails.get(epoch)
            if applied_jseq is None or tail is None or tail > applied_jseq:
                continue
            path.unlink()
            self._epoch_tails.pop(epoch, None)
        self.open_for_append()

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def stats(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "next_jseq": self.next_jseq,
            "records_appended": self.records_appended,
            "records_replayed": self.records_replayed,
            "truncations": self.truncations,
            "fsync_each": self.fsync_each,
        }
