"""Fault-injection failpoints for the serving tier.

A *failpoint* is a named site in the serving code path (``server.ingest``,
``server.respond``, ``journal.append``, ``snapshot.write``) that normally
does nothing.  Arming it attaches an *action* — kill the process, drop the
connection, sleep, tear a journal write, corrupt a snapshot — that fires on
the next hit(s) of that site.  The chaos test suite and the CI
``chaos-smoke`` job drive worker crashes and torn writes through this
registry instead of ad-hoc monkeypatching, so the recovery machinery is
exercised through exactly the code paths production would take.

Arming paths:

* the ``failpoint`` protocol op (``{"op": "failpoint", "spec": ...}``;
  on a sharded server an integer ``shard`` field targets one worker);
* the ``REPRO_FAILPOINTS`` environment variable, read once at server boot
  (:func:`load_from_env`).

The spec grammar is ``name=action[*count][@skip]``, comma-separated::

    server.ingest=kill@40          # SIGKILL this process on the 41st ingest
    server.respond=drop*2          # drop the next two connections
    server.respond=sleep:0.5       # one slow response
    journal.append=torn            # tear the next journal write mid-record
    snapshot.write=corrupt         # truncate the next snapshot payload

Disarmed failpoints are zero-cost beyond one truthiness check of an empty
dict — the hot ingest path pays nothing in production.

Process-wide by design: a failpoint describes *this process* failing, and
every server/worker process carries its own registry (spawn-context worker
processes re-import this module fresh, so a respawned worker boots clean
unless the environment re-arms it).
"""

from __future__ import annotations

import asyncio
import os
import signal
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ENV_VAR",
    "FailpointError",
    "arm",
    "armed",
    "configure",
    "disarm",
    "fire",
    "fire_async",
    "load_from_env",
]

#: Environment variable holding a boot-time failpoint spec.
ENV_VAR = "REPRO_FAILPOINTS"

#: Actions :func:`fire` executes itself (the call site never sees them).
_TERMINAL_ACTIONS = frozenset(["kill", "exit", "drop", "error"])

#: Actions returned to the call site for local interpretation.
_SITE_ACTIONS = frozenset(["torn", "corrupt", "sleep"])


class FailpointError(ValueError):
    """A failpoint spec could not be parsed."""


@dataclass
class _Armed:
    """One armed failpoint: the action plus its firing schedule."""

    action: str
    param: float | None
    remaining: int
    skip: int
    hits: int = 0


_REGISTRY: dict[str, _Armed] = {}


def _parse_entry(entry: str) -> tuple[str, _Armed]:
    name, separator, spec = entry.partition("=")
    name = name.strip()
    if not separator or not name or not spec.strip():
        raise FailpointError("failpoint entry must be name=action, got %r" % (entry,))
    spec = spec.strip()
    skip = 0
    count = 1
    if "@" in spec:
        spec, _, skip_text = spec.rpartition("@")
        try:
            skip = int(skip_text)
        except ValueError:
            raise FailpointError("bad @skip in failpoint %r" % (entry,)) from None
    if "*" in spec:
        spec, _, count_text = spec.rpartition("*")
        try:
            count = int(count_text)
        except ValueError:
            raise FailpointError("bad *count in failpoint %r" % (entry,)) from None
    action, _, param_text = spec.partition(":")
    action = action.strip()
    param: float | None = None
    if param_text:
        try:
            param = float(param_text)
        except ValueError:
            raise FailpointError("bad action parameter in failpoint %r" % (entry,)) from None
    if action not in _TERMINAL_ACTIONS and action not in _SITE_ACTIONS:
        raise FailpointError(
            "unknown failpoint action %r (known: %s)"
            % (action, ", ".join(sorted(_TERMINAL_ACTIONS | _SITE_ACTIONS)))
        )
    if skip < 0 or count <= 0:
        raise FailpointError("failpoint %r needs *count > 0 and @skip >= 0" % (entry,))
    return name, _Armed(action=action, param=param, remaining=count, skip=skip)


def configure(spec: str) -> dict[str, Any]:
    """Arm every ``name=action`` entry of a comma-separated spec.

    Returns the post-arming registry description (what ``armed()`` reports),
    so the ``failpoint`` protocol op can answer with the effective state.
    """
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, state = _parse_entry(entry)
        _REGISTRY[name] = state
    return armed()


def arm(name: str, action: str, count: int = 1, skip: int = 0) -> None:
    """Arm one failpoint programmatically (tests)."""
    _, state = _parse_entry("%s=%s*%d@%d" % (name, action, count, skip))
    _REGISTRY[name] = state


def disarm(name: str | None = None) -> None:
    """Disarm one failpoint, or every failpoint when ``name`` is ``None``."""
    if name is None:
        _REGISTRY.clear()
    else:
        _REGISTRY.pop(name, None)


def armed() -> dict[str, Any]:
    """Registry description: name -> action/remaining/skip/hits."""
    return {
        name: {
            "action": state.action if state.param is None
            else "%s:%s" % (state.action, state.param),
            "remaining": state.remaining,
            "skip": state.skip,
            "hits": state.hits,
        }
        for name, state in _REGISTRY.items()
    }


def load_from_env() -> dict[str, Any]:
    """Arm from :data:`ENV_VAR`; a missing/empty variable is a no-op."""
    spec = os.environ.get(ENV_VAR, "")
    if not spec:
        return armed()
    return configure(spec)


def _evaluate(name: str) -> _Armed | None:
    """Hit-count ``name``; return the armed state when it should fire now."""
    state = _REGISTRY.get(name)
    if state is None:
        return None
    state.hits += 1
    if state.hits <= state.skip:
        return None
    if state.remaining <= 0:
        return None
    state.remaining -= 1
    if state.remaining == 0 and state.action != "sleep":
        # One-shot schedules disarm themselves so a respawned caller path
        # (or the next request) runs clean without an explicit disarm.
        _REGISTRY.pop(name, None)
    return state


def fire(name: str) -> tuple[str, float | None] | None:
    """Evaluate one failpoint hit; the common disarmed case is near-free.

    Terminal actions execute here: ``kill`` SIGKILLs the process (the chaos
    crash primitive — no atexit, no flush, exactly what a crashed worker
    looks like), ``exit`` hard-exits, ``drop`` raises
    :class:`ConnectionResetError` and ``error`` raises :class:`RuntimeError`.
    Site-interpreted actions (``torn``, ``corrupt``, ``sleep``) are returned
    as ``(action, param)`` for the call site to apply.
    """
    if not _REGISTRY:
        return None
    state = _evaluate(name)
    if state is None:
        return None
    if state.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if state.action == "exit":
        os._exit(1)
    if state.action == "drop":
        raise ConnectionResetError("failpoint %s: injected connection drop" % (name,))
    if state.action == "error":
        raise RuntimeError("failpoint %s: injected error" % (name,))
    return state.action, state.param


async def fire_async(name: str) -> tuple[str, float | None] | None:
    """Like :func:`fire`, but serves ``sleep`` actions in place."""
    if not _REGISTRY:
        return None
    outcome = fire(name)
    if outcome is not None and outcome[0] == "sleep":
        await asyncio.sleep(outcome[1] if outcome[1] is not None else 0.1)
    return outcome
