"""Replay load driver: stream a generated trace at a running sketch service.

``repro replay`` (and the service benchmark) use this module to answer the
operational question every serving layer faces: *what arrival rate does the
service sustain while answering queries?*  The driver

1. asks the server for its :meth:`~repro.service.config.ServiceConfig.describe`
   info and builds a matching synthetic trace (string keys for flat mode,
   bounded integer keys for hierarchical mode, per-batch site assignment for
   multisite mode; count-based windows replay arrival indices as clocks);
2. replays the trace in client-side batches, optionally paced to a target
   arrival rate (unpaced replay measures the saturation throughput — the
   bounded ingest queue pushes back through TCP, so the driver can never
   outrun the server by more than the queue);
3. interleaves queries every ``query_every`` batches, timing each round trip;
4. drains, so every acknowledged arrival is applied, and reports achieved
   throughput plus query-latency percentiles.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ConfigurationError
from ..streams.generators import IntegerZipfTrace, make_trace
from ..streams.stream import Stream
from .client import RetryPolicy, ServiceClient, ServiceRequestError

__all__ = ["ReplayReport", "build_replay_stream", "run_replay"]

#: Retry policy of replay connections: a restarted backend or a recovering
#: shard costs retries, not an aborted replay.  Exactly-once ingest markers
#: (``client``/``seq``) make resumed chunks safe to re-send.
_REPLAY_RETRY = RetryPolicy(attempts=6, base_delay=0.1, max_delay=2.0, deadline=120.0)


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    records: int = 0
    batches: int = 0
    connections: int = 1
    elapsed_seconds: float = 0.0
    drain_seconds: float = 0.0
    achieved_rate: float = 0.0
    target_rate: float | None = None
    queries: int = 0
    query_errors: int = 0
    query_p50_ms: float = 0.0
    query_p99_ms: float = 0.0
    query_max_ms: float = 0.0
    retried_chunks: int = 0
    reconnects: int = 0
    server_stats: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dictionary form for ``--json`` output."""
        return {
            "records": self.records,
            "batches": self.batches,
            "connections": self.connections,
            "elapsed_seconds": self.elapsed_seconds,
            "drain_seconds": self.drain_seconds,
            "achieved_rate": self.achieved_rate,
            "target_rate": self.target_rate,
            "queries": self.queries,
            "query_errors": self.query_errors,
            "query_p50_ms": self.query_p50_ms,
            "query_p99_ms": self.query_p99_ms,
            "query_max_ms": self.query_max_ms,
            "retried_chunks": self.retried_chunks,
            "reconnects": self.reconnects,
            "server_stats": self.server_stats,
        }

    def format_lines(self) -> list[str]:
        """Human-readable report lines for the CLI."""
        lines = [
            "records replayed:       %d (%d batches%s)"
            % (
                self.records,
                self.batches,
                "" if self.connections <= 1 else ", %d connections" % self.connections,
            ),
            "replay time:            %.3f s (+ %.3f s drain)"
            % (self.elapsed_seconds, self.drain_seconds),
            "achieved ingest rate:   %.0f records/s%s"
            % (
                self.achieved_rate,
                "" if self.target_rate is None else " (target %.0f/s)" % self.target_rate,
            ),
        ]
        if self.queries:
            lines.append(
                "query latency:          p50 %.2f ms   p99 %.2f ms   max %.2f ms (%d queries)"
                % (self.query_p50_ms, self.query_p99_ms, self.query_max_ms, self.queries)
            )
        if self.query_errors:
            lines.append("query errors:           %d (e.g. pre-first-round multisite reads)"
                         % self.query_errors)
        if self.retried_chunks or self.reconnects:
            lines.append(
                "retried chunks:         %d (%d reconnects; exactly-once via client/seq)"
                % (self.retried_chunks, self.reconnects)
            )
        if self.server_stats:
            lines.append(
                "server state:           %d ingested, clock %s, %.1f KiB resident"
                % (
                    self.server_stats.get("records_ingested", 0),
                    self.server_stats.get("applied_clock"),
                    self.server_stats.get("memory_bytes", 0) / 1024.0,
                )
            )
        return lines


def build_replay_stream(
    info: dict[str, Any],
    records: int,
    seed: int = 7,
    dataset: str = "wc98",
) -> tuple[Stream, list[float]]:
    """Build the trace and per-record clocks matching a server's info.

    Returns:
        ``(stream, clocks)`` where clocks are the trace timestamps for
        time-based windows and arrival indices (1-based) for count-based
        windows.
    """
    mode = info.get("mode", "flat")
    if mode == "hierarchical":
        universe_bits = int(info["universe_bits"])
        stream = IntegerZipfTrace(
            num_records=records, universe_bits=universe_bits, seed=seed
        ).generate()
    else:
        stream = make_trace(dataset, num_records=records, seed=seed)
    if info.get("model") == "count":
        clocks = [float(index + 1) for index in range(len(stream))]
    else:
        clocks = [record.timestamp for record in stream]
    return stream, clocks


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _plan_connections(
    keys: list[Any],
    clocks: list[float],
    mode: str,
    sites: int,
    shards: int,
    groups: int,
    batch_size: int,
) -> list[list[tuple[list[Any], list[float], int]]]:
    """Partition the trace into per-connection batch plans.

    The sharded router enforces arrival-clock ordering *per shard*, so
    several connections can ingest concurrently only if each shard's records
    all flow through one connection, in trace order.  Connection ``c`` owns
    the shards ``{s : s % groups == c}``; flat/hierarchical records route by
    :func:`~repro.service.router.shard_of` on the key, multisite batches by
    the shard owning their site.  With one group the plan is the classic
    single-connection replay (global batches, round-robin sites).
    """
    plans: list[list[tuple[list[Any], list[float], int]]] = [[] for _ in range(groups)]
    if groups <= 1:
        batch_index = 0
        for offset in range(0, len(keys), batch_size):
            stop = offset + batch_size
            plans[0].append((keys[offset:stop], clocks[offset:stop], batch_index % sites))
            batch_index += 1
        return plans
    if mode == "multisite":
        from .shard_worker import sites_of_shard

        site_shard = [0] * sites
        for shard in range(shards):
            for site in sites_of_shard(sites, shards, shard):
                site_shard[site] = shard
        batch_index = 0
        for offset in range(0, len(keys), batch_size):
            stop = offset + batch_size
            site = batch_index % sites
            plans[site_shard[site] % groups].append(
                (keys[offset:stop], clocks[offset:stop], site)
            )
            batch_index += 1
        return plans
    from .router import shard_column

    owners = shard_column(keys, shards)
    pending: list[tuple[list[Any], list[float]]] = [([], []) for _ in range(groups)]
    for index, owner in enumerate(owners):
        connection = owner % groups
        batch_keys, batch_clocks = pending[connection]
        batch_keys.append(keys[index])
        batch_clocks.append(clocks[index])
        if len(batch_keys) >= batch_size:
            plans[connection].append((batch_keys, batch_clocks, 0))
            pending[connection] = ([], [])
    for connection, (batch_keys, batch_clocks) in enumerate(pending):
        if batch_keys:
            plans[connection].append((batch_keys, batch_clocks, 0))
    return plans


async def run_replay(
    host: str = "127.0.0.1",
    port: int = 7600,
    records: int = 50_000,
    batch_size: int = 1_024,
    target_rate: float | None = None,
    query_every: int = 8,
    seed: int = 7,
    dataset: str = "wc98",
    sample_keys: int = 64,
    connections: int = 1,
) -> ReplayReport:
    """Replay a synthetic trace against a running server; return the report.

    Args:
        host: Server host.
        port: Server port.
        records: Trace length.
        batch_size: Records per ingest request.
        target_rate: Target arrival rate in records/s (``None`` = as fast as
            the server accepts).
        query_every: Issue one query every this many ingest batches
            (0 disables queries; queries always ride connection 0).
        seed: Trace seed — the serial reference in the smoke test replays
            the same seed to reproduce the exact stream.
        dataset: Flat-mode trace family (``wc98``/``snmp``/``uniform``).
        sample_keys: Number of distinct keys sampled for point queries.
        connections: Concurrent shard-affine ingest connections.  Capped at
            the server's shard count (an unsharded server always replays
            over one connection — per-connection order is the only order a
            single service enforces globally).
    """
    if records <= 0:
        raise ConfigurationError("records must be positive, got %r" % (records,))
    if batch_size <= 0:
        raise ConfigurationError("batch_size must be positive, got %r" % (batch_size,))
    if connections <= 0:
        raise ConfigurationError("connections must be positive, got %r" % (connections,))
    client = await ServiceClient.connect(host, port, retry=_REPLAY_RETRY, timeout=30.0)
    extra_clients: list[ServiceClient] = []
    try:
        info = (await client.get_info()).raw
        trace, clocks = build_replay_stream(info, records, seed=seed, dataset=dataset)
        keys: list[Any] = [record.key for record in trace]
        mode = info.get("mode", "flat")
        sites = int(info.get("sites", 1)) if mode == "multisite" else 1
        shards = int(info.get("shards") or 1)
        groups = max(1, min(connections, shards))
        probe_keys: list[Any] = keys[:: max(1, len(keys) // max(1, sample_keys))][:sample_keys]
        latencies: list[float] = []
        report = ReplayReport(target_rate=target_rate, connections=groups)

        plans = _plan_connections(keys, clocks, mode, sites, shards, groups, batch_size)
        for _ in range(groups - 1):
            extra_clients.append(await ServiceClient.connect(host, port, retry=_REPLAY_RETRY, timeout=30.0))
        clients = [client] + extra_clients

        start = time.perf_counter()
        sent_total = 0
        batches_total = 0

        async def run_connection(index: int) -> None:
            nonlocal sent_total, batches_total
            own = clients[index]
            own_batches = 0
            for batch_keys, batch_clocks, site in plans[index]:
                if target_rate is not None and sent_total:
                    # Pace against the *global* sent count so the aggregate
                    # arrival rate (not each connection's) hits the target.
                    scheduled = start + sent_total / target_rate
                    delay = scheduled - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                retries_before = own.retries
                accepted = await own.ingest(batch_keys, batch_clocks, site=site)
                if own.retries > retries_before:
                    report.retried_chunks += 1
                sent_total += accepted
                batches_total += 1
                own_batches += 1
                if index == 0 and query_every and own_batches % query_every == 0:
                    query_start = time.perf_counter()
                    try:
                        await _issue_query(own, mode, probe_keys, own_batches)
                        latencies.append(time.perf_counter() - query_start)
                        report.queries += 1
                    except ServiceRequestError:
                        # e.g. a multisite read before the first aggregation
                        # round.
                        report.query_errors += 1

        await asyncio.gather(*(run_connection(index) for index in range(groups)))
        report.reconnects = sum(own.reconnects for own in clients)
        elapsed = time.perf_counter() - start
        drain_start = time.perf_counter()
        await client.drain()
        drain_seconds = time.perf_counter() - drain_start

        report.records = sent_total
        report.batches = batches_total
        report.elapsed_seconds = elapsed
        report.drain_seconds = drain_seconds
        total = elapsed + drain_seconds
        report.achieved_rate = sent_total / total if total > 0 else float("inf")
        latencies.sort()
        report.query_p50_ms = _percentile(latencies, 0.50) * 1e3
        report.query_p99_ms = _percentile(latencies, 0.99) * 1e3
        report.query_max_ms = latencies[-1] * 1e3 if latencies else 0.0
        report.server_stats = (await client.get_stats()).raw
        return report
    finally:
        for extra in extra_clients:
            await extra.close()
        await client.close()


async def _issue_query(
    client: ServiceClient, mode: str, probe_keys: list[Any], batch_index: int
) -> None:
    """Rotate through the query mix a live deployment would serve."""
    key = probe_keys[batch_index % len(probe_keys)] if probe_keys else None
    turn = batch_index % 4
    if mode == "hierarchical":
        if turn == 0 and key is not None:
            await client.point(key)
        elif turn == 1:
            await client.heavy_hitters(phi=0.02)
        elif turn == 2:
            await client.quantile(0.5)
        elif key is not None:
            await client.range_query(0, int(key))
    else:  # flat and multisite serve the same point/self-join mix
        if turn % 2 == 0 and key is not None:
            await client.point(key)
        else:
            await client.self_join()
