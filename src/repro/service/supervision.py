"""Supervised shard recovery: watch worker liveness, respawn the dead.

:class:`ShardSupervisor` turns the sharded tier from fail-fast into
self-healing.  It polls worker liveness off the router's backend and walks
each shard through a small state machine::

    healthy ──(worker died)──> degraded ──(restart begins)──> recovering
       ^                                                          │
       └────────────(restore + journal replay done)──────────────┘

Recovery is the router's existing :meth:`~repro.service.router.ShardRouter
.restart_shard` — respawn the worker, restore its last per-shard epoch
snapshot, let its write-ahead journal replay the acked tail, and re-adopt
its clock as the routing high-water mark.  A restart that fails (snapshot
gone, port exhaustion, the failpoint killing the respawn too) retries with
capped exponential backoff instead of hot-looping.

Supervision is opt-in (``ServiceConfig.supervise``): the unsupervised tier
keeps its documented fail-fast semantics — degraded shards are reported in
``stats`` and recovery is the operator's ``restart_shard`` call.
"""

from __future__ import annotations
import contextlib

import asyncio
import sys
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .router import ShardRouter

__all__ = ["ShardSupervisor", "HEALTHY", "DEGRADED", "RECOVERING"]

HEALTHY = "healthy"
DEGRADED = "degraded"
RECOVERING = "recovering"


class ShardSupervisor:
    """Liveness watcher + restart driver for one router's shards.

    Args:
        router: The router whose workers to supervise (already constructed;
            the supervisor starts after the router's own ``start``).
        check_every: Liveness poll period, in seconds.
        base_backoff: Delay after the first failed restart attempt.
        max_backoff: Cap of the exponential backoff between attempts.
    """

    def __init__(
        self,
        router: ShardRouter,
        check_every: float = 0.25,
        base_backoff: float = 0.5,
        max_backoff: float = 15.0,
    ) -> None:
        self.router = router
        self.check_every = check_every
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.states: list[str] = [HEALTHY] * router.num_shards
        self.restarts: list[int] = [0] * router.num_shards
        self.failed_restarts: list[int] = [0] * router.num_shards
        self._recovery_tasks: dict[int, asyncio.Task[None]] = {}
        self._watch_task: asyncio.Task[None] | None = None

    async def start(self) -> None:
        if self._watch_task is not None:
            return
        self._watch_task = asyncio.create_task(self._watch_loop(), name="shard-supervisor")

    async def stop(self) -> None:
        tasks = list(self._recovery_tasks.values())
        if self._watch_task is not None:
            tasks.append(self._watch_task)
        self._watch_task = None
        self._recovery_tasks = {}
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task

    async def _watch_loop(self) -> None:
        router = self.router
        while True:
            try:
                if router._started and not router._stopping:
                    for shard in range(router.num_shards):
                        if shard in self._recovery_tasks:
                            continue
                        if router.workers.alive(shard):
                            self.states[shard] = HEALTHY
                        else:
                            self.states[shard] = DEGRADED
                            self._recovery_tasks[shard] = asyncio.create_task(
                                self._recover(shard), name="shard%d-recovery" % shard
                            )
            except Exception as exc:  # noqa: BLE001 - the watcher must outlive one bad poll
                # An unexpected error here would otherwise kill the watch
                # task silently, permanently disabling self-healing while
                # stats keep reporting stale shard states.  Report and keep
                # polling (CancelledError still propagates: it is a
                # BaseException, not caught here).
                print(
                    "shard-supervisor: liveness poll failed (%s: %s); will retry"
                    % (type(exc).__name__, exc),
                    file=sys.stderr,
                    flush=True,
                )
            await asyncio.sleep(self.check_every)

    async def _recover(self, shard: int) -> None:
        """Restart one dead shard, retrying with capped exponential backoff."""
        backoff = self.base_backoff
        try:
            while self.router._started and not self.router._stopping:
                self.states[shard] = RECOVERING
                try:
                    report = await self.router.restart_shard(shard)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    self.failed_restarts[shard] += 1
                    self.states[shard] = DEGRADED
                    print(
                        "shard-supervisor: shard %d restart failed (%s: %s); "
                        "retrying in %.1f s"
                        % (shard, type(exc).__name__, exc, backoff),
                        file=sys.stderr,
                        flush=True,
                    )
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2.0, self.max_backoff)
                    continue
                self.restarts[shard] += 1
                self.states[shard] = HEALTHY
                print(
                    "shard-supervisor: shard %d recovered (restored_from=%s, clock=%r)"
                    % (shard, report.get("restored_from"), report.get("applied_clock")),
                    file=sys.stderr,
                    flush=True,
                )
                return
        finally:
            self._recovery_tasks.pop(shard, None)

    def describe(self) -> dict[str, Any]:
        """Supervision counters for the router's ``stats`` surface."""
        return {
            "shard_states": list(self.states),
            "restarts": list(self.restarts),
            "failed_restarts": list(self.failed_restarts),
        }
