"""Sharded serving tier: a front-end router over shard-worker services.

One :class:`ShardRouter` partitions the key universe (or the sites, in
multisite mode) across ``config.shards`` workers, each a full, unmodified
:class:`~repro.service.core.SketchService`.  Ingest chunks are split by a
stable hash of the key and fanned out; queries are answered by collecting
per-shard estimates and merging them — which is exactly the paper's
order-preserving aggregation story (Theorem 4): sketches built with
identical dimensions and seeds compose, so a partitioned deployment answers
like a single sketch, up to the documented per-operation semantics below.

Merge semantics per operation (key-partitioned modes):

* ``point`` — routed to the single shard that owns the key.  With one shard
  the answer is byte-identical to an unsharded service.
* ``arrivals`` / ``range`` / ``self_join`` (flat) — sums of the per-shard
  estimates.  The key partition is disjoint, so the sums are exact: a flat
  self-join has no cross-shard product terms, and a range/arrival total is a
  plain partition of the in-range mass.
* ``heavy_hitters`` — the relative threshold ``phi`` is converted to an
  absolute occurrence threshold against the *global* arrival total, then
  each shard runs its group-testing descent with that absolute threshold
  over the keys it owns; the disjoint result sets are merged and re-sorted.
* ``quantile`` / ``quantiles`` — the router runs the same binary search as
  :meth:`~repro.queries.hierarchical.HierarchicalECMSketch.quantile`, with
  each cumulative probe ``[0, mid]`` answered by a fanned range query.
* multisite ``point``/``arrivals``/``self_join`` — each worker coordinates
  its own block of sites; frequencies sum across blocks, and self-join
  fetches every worker's serialized root aggregate and merges them through
  :meth:`~repro.core.ecm_sketch.ECMSketch.merge_many` (the wire-format
  state transfer shared with the distributed runner).

Ordering is enforced per shard, not globally: the router keeps one ingest
high-water mark per shard and validates each sub-chunk against its target
shard's mark before anything is submitted (all-or-nothing, so a rejected
chunk leaves no shard partially updated).  That is what makes multiple
replay connections sound — each connection owns a disjoint set of shards.

Persistence is a manifest over per-shard snapshots: ``snapshot`` fans an
explicit epoch-versioned path to every worker, then atomically writes a
manifest naming them all.  A router restarted from the manifest respawns
every worker from its recorded per-shard snapshot and reseeds the per-shard
high-water marks from the workers' restored clocks — reassembling the exact
pre-crash state.  A single crashed worker restarts the same way
(:meth:`ShardRouter.restart_shard`) without touching its siblings.
"""

from __future__ import annotations
import contextlib

import asyncio
import json
import os
import time
import zlib
from collections import deque
from collections.abc import Awaitable, Callable, Hashable, Sequence
from typing import Any

import numpy as np

from ..core.ecm_sketch import ECMSketch
from ..core.errors import ConfigurationError, EmptyStructureError
from ..serialization import ecm_sketch_from_dict
from .config import ServiceConfig
from .core import (
    IngestRejectedError,
    ServiceError,
    ServiceStoppedError,
    SketchService,
    validate_clock_column,
    validate_keys_for_mode,
    validate_values_column,
)
from .core import _require_param  # shared "missing required parameter" wording
from .errors import (
    ClockRegressionError,
    DeadlineExceededError,
    InvalidParameterError,
    ModeMismatchError,
    ServiceRequestError,
    UnknownOperationError,
    VersionMismatchError,
    exception_for_error,
)
from .pool import TenantPool
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    check_protocol_version,
    decode_line,
    encode_message,
)
from .server import dispatch_service_op
from .shard_worker import ShardProcess, ShardUnavailableError, sites_of_shard, worker_config
from .snapshot import write_snapshot
from .supervision import ShardSupervisor

__all__ = [
    "PARTITION_SCHEME",
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "shard_of",
    "shard_column",
    "ShardRouter",
    "LocalShardBackend",
    "ProcessShardBackend",
]

#: Name of the key-partitioning function, recorded in every manifest.  A
#: manifest written under a different partitioning must be rejected: restored
#: shards would own different key sets than the router routes to.
PARTITION_SCHEME = "crc32v1"

MANIFEST_KIND = "shard_manifest"
MANIFEST_VERSION = 1

#: Default deadline of one shard fan-out, in seconds.  Generous — it exists
#: to bound *hangs* (a worker wedged mid-request would otherwise stall the
#: router forever), not to race healthy operations; ingest backpressure and
#: large snapshots finish orders of magnitude sooner.
_FAN_DEADLINE = 120.0

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15  # Fibonacci-hashing multiplier (2**64 / phi)


def shard_of(key: Hashable, shards: int) -> int:
    """Stable shard index of ``key`` — the ``crc32v1`` partitioning.

    Deliberately *not* Python's ``hash()``: string hashing is salted per
    process, and the shard owning a key must survive restarts and be
    reproducible across the router, reference tests, and replay clients.
    Integers (including bools, which JSON ``true``/``false`` decode to) mix
    through a 64-bit Fibonacci multiply; strings and bytes go through CRC-32
    of their UTF-8 form; anything else hashes its ``repr``.
    """
    if shards <= 1:
        return 0
    if isinstance(key, int):
        mixed = ((key & _MASK64) * _GOLDEN) & _MASK64
        mixed ^= mixed >> 29
        return int(mixed % shards)
    if isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, (bytes, bytearray)):
        data = bytes(key)
    else:
        data = repr(key).encode("utf-8")
    return zlib.crc32(data) % shards


#: Chunks at least this long take the vectorized partitioning path.
_VECTOR_PARTITION_CUTOFF = 64


def shard_column(keys: Sequence[Hashable], shards: int) -> list[int]:
    """Shard index of every key in a column (vectorized for integer keys).

    The NumPy path reproduces :func:`shard_of` bit-for-bit: unsigned 64-bit
    wrap-around multiply, the same xor-shift, the same modulus.  Columns
    that are not plain machine integers (strings, mixed types, big ints
    promoted to object dtype) fall back to the scalar loop.
    """
    if shards <= 1:
        return [0] * len(keys)
    if len(keys) >= _VECTOR_PARTITION_CUTOFF:
        array = np.asarray(keys)
        if array.ndim == 1 and np.issubdtype(array.dtype, np.integer):
            mixed = array.astype(np.uint64) * np.uint64(_GOLDEN)
            mixed ^= mixed >> np.uint64(29)
            return (mixed % np.uint64(shards)).astype(np.int64).tolist()
    return [shard_of(key, shards) for key in keys]


class _ShardChannel:
    """One pipelined NDJSON connection from the router to a shard worker.

    Requests are written immediately and acknowledged in FIFO order: the
    submitter gets a future, and a single reader task resolves futures as
    response lines arrive.  The worker serves one request at a time per
    connection, so FIFO resolution is exact.  A broken connection fails
    every in-flight future with :class:`ShardUnavailableError` and marks the
    channel closed — the router then reports the shard as degraded instead
    of hanging.
    """

    def __init__(
        self, shard_id: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.shard_id = shard_id
        self.closed_reason: str | None = None
        self._reader = reader
        self._writer = writer
        self._pending: deque[asyncio.Future[Any]] = deque()
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="repro-shard%d-reader" % shard_id
        )

    @classmethod
    async def connect(
        cls, shard_id: int, host: str, port: int, timeout: float = 30.0
    ) -> _ShardChannel:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=MAX_LINE_BYTES), timeout
        )
        channel = cls(shard_id, reader, writer)
        # Version handshake before any real traffic: an incompatible worker
        # fails loudly here, not on an unknown op mid-stream.
        try:
            result = await asyncio.wait_for(
                channel.submit({"op": "hello", "protocol_version": PROTOCOL_VERSION}), timeout
            )
            version = result.get("protocol_version") if isinstance(result, dict) else None
            if isinstance(version, str):
                check_protocol_version(version)
        except VersionMismatchError:
            await channel.close()
            raise
        except ServiceRequestError as exc:
            await channel.close()
            raise VersionMismatchError(
                "shard %d did not complete the protocol handshake "
                "(pre-%s worker?): %s" % (shard_id, PROTOCOL_VERSION, exc)
            ) from exc
        return channel

    def submit(self, message: dict[str, Any]) -> asyncio.Future[Any]:
        """Write one request; returns the future of its response."""
        if self.closed_reason is not None:
            raise ShardUnavailableError(
                "shard %d is down (%s)" % (self.shard_id, self.closed_reason)
            )
        future: asyncio.Future[Any] = asyncio.get_running_loop().create_future()
        self._pending.append(future)
        try:
            self._writer.write(encode_message(message))
        except Exception as exc:  # transport already torn down
            self._pending.remove(future)
            self._fail_pending(str(exc) or type(exc).__name__)
            raise ShardUnavailableError(
                "shard %d connection lost (%s)" % (self.shard_id, exc)
            ) from exc
        return future

    async def _read_loop(self) -> None:
        reason = "connection closed"
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = decode_line(line)
                except ProtocolError as exc:
                    reason = "protocol error: %s" % (exc,)
                    break
                if not self._pending:
                    reason = "unsolicited response"
                    break
                future = self._pending.popleft()
                if future.cancelled():
                    continue
                if response.get("ok"):
                    future.set_result(response.get("result"))
                else:
                    # Worker-side failures are ordinary service errors (bad
                    # parameters, mode mismatches, ...), not availability
                    # problems: rebuild the typed exception from the envelope
                    # — its code survives the hop, so the front server
                    # re-emits the worker's code — name the shard, and keep
                    # the channel healthy.
                    future.set_exception(
                        exception_for_error(
                            response.get("error"), prefix="shard %d" % (self.shard_id,)
                        )
                    )
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            reason = str(exc) or type(exc).__name__
        finally:
            self._fail_pending(reason)

    def _fail_pending(self, reason: str) -> None:
        if self.closed_reason is None:
            self.closed_reason = reason
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(
                    ShardUnavailableError(
                        "shard %d connection lost (%s)" % (self.shard_id, reason)
                    )
                )

    async def close(self) -> None:
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        self._fail_pending("closed")
        self._writer.close()
        with contextlib.suppress(ConnectionResetError, BrokenPipeError, OSError):
            await self._writer.wait_closed()


class LocalShardBackend:
    """Shard backend running every worker in-process.

    Each shard is a real :class:`~repro.service.core.SketchService`, and
    requests go through :func:`~repro.service.server.dispatch_service_op` —
    the exact code path a TCP worker serves — just without processes or
    sockets.  This is what the property-based equivalence suite sweeps:
    hundreds of random topologies per minute, which process spawning could
    never afford.  ``submit`` wraps the dispatch coroutine in a task
    immediately, so per-shard FIFO ordering matches the channel semantics
    (``SketchService.ingest`` records its high-water mark before its first
    suspension point).
    """

    def __init__(self, config: ServiceConfig, host: str = "127.0.0.1") -> None:
        self.num_shards = int(config.shards or 0)
        self._configs = [worker_config(config, shard) for shard in range(self.num_shards)]
        self.services: list[SketchService | None] = [None] * self.num_shards

    async def start(self, restore_paths: dict[int, str]) -> None:
        for shard in range(self.num_shards):
            await self._boot(shard, restore_paths.get(shard))

    async def _boot(self, shard: int, restore: str | None) -> None:
        if restore is not None:
            service = SketchService.from_snapshot(restore)
        else:
            service = SketchService(self._configs[shard])
        await service.start()
        self.services[shard] = service

    def alive(self, shard: int) -> bool:
        return self.services[shard] is not None

    def submit(self, shard: int, message: dict[str, Any]) -> Awaitable[Any]:
        service = self.services[shard]
        if service is None:
            raise ShardUnavailableError("shard %d is down" % (shard,))
        return asyncio.ensure_future(dispatch_service_op(service, message))

    async def restart(self, shard: int, restore: str | None) -> None:
        service = self.services[shard]
        self.services[shard] = None
        if service is not None:
            await service.stop(drain=False)
        await self._boot(shard, restore)

    def kill(self, shard: int) -> None:
        """Drop a shard abruptly (fault injection): pending state is lost.

        The abandoned service's tasks are cancelled in the background
        (``stop(drain=False)`` never drains or snapshots) so the loop does
        not warn about destroyed pending tasks.
        """
        service = self.services[shard]
        self.services[shard] = None
        if service is not None:
            asyncio.ensure_future(service.stop(drain=False))

    def describe(self, shard: int) -> dict[str, Any]:
        return {"shard": shard, "alive": self.alive(shard), "pid": None, "port": None}

    async def stop(self, graceful: bool = True) -> None:
        for shard, service in enumerate(self.services):
            if service is not None:
                await service.stop(drain=graceful)
            self.services[shard] = None


class ProcessShardBackend:
    """Shard backend spawning one worker process (and connection) per shard."""

    def __init__(self, config: ServiceConfig, host: str = "127.0.0.1") -> None:
        self.num_shards = int(config.shards or 0)
        self.host = host
        self._config = config
        self.processes: list[ShardProcess | None] = [None] * self.num_shards
        self.channels: list[_ShardChannel | None] = [None] * self.num_shards

    async def start(self, restore_paths: dict[int, str]) -> None:
        # Spawn every process first (they boot concurrently), then collect
        # ports and connect.  A boot failure kills the already-spawned rest.
        for shard in range(self.num_shards):
            self.processes[shard] = ShardProcess(
                shard,
                worker_config(self._config, shard),
                host=self.host,
                restore=restore_paths.get(shard),
            )
        try:
            await asyncio.gather(*(self._connect(shard) for shard in range(self.num_shards)))
        except BaseException:
            await self.stop(graceful=False)
            raise

    async def _connect(self, shard: int) -> None:
        process = self.processes[shard]
        assert process is not None
        port = await process.wait_ready()
        self.channels[shard] = await _ShardChannel.connect(shard, self.host, port, timeout=30.0)

    def alive(self, shard: int) -> bool:
        process = self.processes[shard]
        channel = self.channels[shard]
        return (
            process is not None
            and process.is_alive()
            and channel is not None
            and channel.closed_reason is None
        )

    def submit(self, shard: int, message: dict[str, Any]) -> Awaitable[Any]:
        if not self.alive(shard):
            raise ShardUnavailableError("shard %d is down" % (shard,))
        channel = self.channels[shard]
        assert channel is not None
        return channel.submit(message)

    async def restart(self, shard: int, restore: str | None) -> None:
        channel = self.channels[shard]
        process = self.processes[shard]
        self.channels[shard] = None
        if channel is not None:
            await channel.close()
        if process is not None:
            process.kill()
            await process.join(timeout=10.0)
        self.processes[shard] = ShardProcess(
            shard, worker_config(self._config, shard), host=self.host, restore=restore
        )
        await self._connect(shard)

    def kill(self, shard: int) -> None:
        """SIGKILL one worker (fault injection)."""
        process = self.processes[shard]
        if process is not None:
            process.kill()

    def describe(self, shard: int) -> dict[str, Any]:
        process = self.processes[shard]
        return {
            "shard": shard,
            "alive": self.alive(shard),
            "pid": process.pid if process is not None else None,
            "port": process.port if process is not None else None,
        }

    async def stop(self, graceful: bool = True) -> None:
        if graceful:
            # Ask every reachable worker to drain and exit; ignore the ones
            # that are already gone.
            acks = []
            for channel in self.channels:
                if channel is not None and channel.closed_reason is None:
                    with contextlib.suppress(ShardUnavailableError):
                        acks.append(channel.submit({"op": "shutdown"}))
            if acks:
                await asyncio.gather(*acks, return_exceptions=True)
        for shard, channel in enumerate(self.channels):
            if channel is not None:
                await channel.close()
            self.channels[shard] = None
        for shard, process in enumerate(self.processes):
            if process is None:
                continue
            exitcode = await process.join(timeout=30.0 if graceful else 5.0)
            if exitcode is None:
                process.kill()
                await process.join(timeout=10.0)
            self.processes[shard] = None


class ShardRouter:
    """Front-end of the sharded serving tier.

    Duck-types the :class:`~repro.service.core.SketchService` surface the
    TCP server consumes (``start``/``stop``/``ingest``/``drain``/``query``/
    ``info``/``stats``/``expire_now``/``snapshot_async``/...), with
    awaitable results where the service answers synchronously — the shared
    dispatch layer awaits either.

    Args:
        config: Router configuration; ``config.shards`` must be set.
        local: Run shards in-process (:class:`LocalShardBackend`) instead of
            spawning worker processes.  Used by the equivalence tests; real
            serving always uses processes.
        host: Interface workers bind (process backend only).
    """

    def __init__(
        self, config: ServiceConfig, local: bool = False, host: str = "127.0.0.1"
    ) -> None:
        if config.shards is None:
            raise ConfigurationError("ShardRouter requires config.shards to be set")
        self.config = config
        # Pooled tier: tenants are hashed across shards *ahead of* the key
        # partition — each tenant lives wholly on shard_of(tenant), whose
        # worker runs its own TenantPool.  The router is then a forwarder:
        # no cross-shard merges and no router-side clock marks (ordering is
        # per tenant, enforced by the owning worker's tenant service).
        self.supports_tenants = config.pool
        self.num_shards = config.shards
        self.workers = (
            LocalShardBackend(config, host=host)
            if local
            else ProcessShardBackend(config, host=host)
        )
        self._high_water: list[float | None] = [None] * self.num_shards
        # Per-client highest seq recorded at fan-out time: a retried chunk
        # (seq at or below the record) skips the per-shard clock pre-flight
        # — its first attempt already advanced the marks — and is re-fanned
        # so every worker can apply-or-dedup it.
        self._client_seqs: dict[str, int] = {}
        self._supervisor: ShardSupervisor | None = None
        self._restore_paths: dict[int, str] = {}
        self._snapshot_epoch = 0
        self._snapshot_lock = asyncio.Lock()
        self._started = False
        self._stopping = False
        self._started_monotonic = time.monotonic()
        self.records_ingested = 0
        self.ingest_batches = 0
        self.snapshots_written = 0
        self.last_snapshot_path: str | None = None
        # Multisite: global site id -> (owning shard, site id local to it).
        self._site_shard: list[int] = []
        self._site_local: list[int] = []
        if config.mode == "multisite" and not config.pool:
            for shard in range(self.num_shards):
                for local_site, _site in enumerate(
                    sites_of_shard(config.sites, self.num_shards, shard)
                ):
                    self._site_shard.append(shard)
                    self._site_local.append(local_site)

    # -------------------------------------------------------------- manifest
    @classmethod
    def from_manifest(
        cls,
        path: str,
        overrides: ServiceConfig | None = None,
        local: bool = False,
        host: str = "127.0.0.1",
    ) -> ShardRouter:
        """Rebuild a router from a shard manifest written by ``snapshot``.

        The manifest's configuration pins everything that determines sketch
        state (mode, epsilon, window, backend, seed, *and* the shard count —
        re-sharding a snapshot is not a restore).  The operational knobs —
        ``snapshot_path``, background periods, batch/queue sizes — follow
        ``overrides`` (the current invocation), mirroring the single-process
        restore path of :func:`~repro.service.server.run_server`.
        """
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigurationError("manifest is not valid JSON: %s" % (exc,)) from exc
        if not isinstance(payload, dict) or payload.get("kind") != MANIFEST_KIND:
            raise ConfigurationError(
                "not a shard manifest: missing kind %r" % (MANIFEST_KIND,)
            )
        if payload.get("version") != MANIFEST_VERSION:
            raise ConfigurationError(
                "unsupported manifest version %r (this build reads version %d)"
                % (payload.get("version"), MANIFEST_VERSION)
            )
        if payload.get("partition") != PARTITION_SCHEME:
            raise ConfigurationError(
                "manifest was written under partition scheme %r; this build routes "
                "with %r — restoring would misroute every key"
                % (payload.get("partition"), PARTITION_SCHEME)
            )
        config = ServiceConfig.from_dict(payload["config"])
        if overrides is not None:
            config.snapshot_path = overrides.snapshot_path
            config.snapshot_every = overrides.snapshot_every
            config.expire_every = overrides.expire_every
            config.batch_size = overrides.batch_size
            config.queue_chunks = overrides.queue_chunks
        router = cls(config, local=local, host=host)
        entries = payload.get("shards")
        if not isinstance(entries, list) or len(entries) != router.num_shards:
            raise ConfigurationError(
                "manifest lists %r shard snapshots for a %d-shard configuration"
                % (len(entries) if isinstance(entries, list) else entries, router.num_shards)
            )
        base = os.path.dirname(os.path.abspath(path))
        for entry in entries:
            shard = int(entry["shard"])
            shard_path = str(entry["path"])
            if not os.path.isabs(shard_path):
                shard_path = os.path.join(base, shard_path)
            router._restore_paths[shard] = shard_path
        router._snapshot_epoch = int(payload.get("epoch", 0))
        return router

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        if self._started:
            raise ServiceError("router is already started")
        await self.workers.start(dict(self._restore_paths))
        self._started = True
        self._stopping = False
        self._started_monotonic = time.monotonic()
        if self._restore_paths:
            await self._reseed_from_workers()
        if self.config.supervise:
            self._supervisor = ShardSupervisor(self)
            await self._supervisor.start()

    async def _reseed_from_workers(self) -> None:
        """Adopt the workers' restored clocks as the routing high-water marks."""
        stats = await self._fan({"op": "stats"})
        self._high_water = [shard_stats.get("applied_clock") for shard_stats in stats]
        self.records_ingested = sum(
            int(shard_stats.get("records_ingested", 0)) for shard_stats in stats
        )

    async def stop(self, drain: bool = True) -> str | None:
        """Drain, final-snapshot (when configured and healthy), stop workers."""
        self._stopping = True
        final_path: str | None = None
        if self._supervisor is not None:
            await self._supervisor.stop()
            self._supervisor = None
        if self._started:
            degraded = self.degraded_shards()
            if drain and not degraded:
                try:
                    await self.drain()
                except ServiceError:
                    degraded = self.degraded_shards()
            if drain and self.config.snapshot_path is not None and not degraded:
                try:
                    final_path = await self.snapshot_async()
                except ServiceError:
                    final_path = None
            if drain and self.config.pool and not degraded:
                # Each worker's graceful shutdown evicts + snapshots its own
                # tenants; the per-shard catalogs under pool_dir are the
                # durable restart state.
                final_path = self.config.pool_dir
                self.last_snapshot_path = final_path
            await self.workers.stop(graceful=drain)
        self._started = False
        return final_path

    async def __aenter__(self) -> ShardRouter:
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop(drain=True)

    # ----------------------------------------------------------------- state
    @property
    def applied_clock(self) -> float | None:
        """Highest ingest high-water mark across shards (equals the applied
        clock once :meth:`drain` has resolved)."""
        marks = [mark for mark in self._high_water if mark is not None]
        return max(marks) if marks else None

    def degraded_shards(self) -> list[int]:
        """Shards that are down (dead worker or broken connection)."""
        if not self._started:
            return []
        return [shard for shard in range(self.num_shards) if not self.workers.alive(shard)]

    def _require_started(self) -> None:
        if not self._started:
            raise ServiceStoppedError("service is not started")

    def _require_all_shards(self) -> None:
        degraded = self.degraded_shards()
        if degraded:
            raise ShardUnavailableError(
                "shard%s %s %s down"
                % (
                    "" if len(degraded) == 1 else "s",
                    ", ".join(str(shard) for shard in degraded),
                    "is" if len(degraded) == 1 else "are",
                )
            )

    async def _gather(
        self, futures: Sequence[Awaitable[Any]], deadline: float | None = None
    ) -> list[Any]:
        """Await all submissions; raise the first failure after all settle.

        ``return_exceptions`` keeps every future retrieved even when one
        fails fast — otherwise a slow shard's later failure would surface as
        an unretrieved-exception warning from the event loop.  Every await
        carries a deadline (:data:`_FAN_DEADLINE` by default): a wedged
        worker surfaces as :class:`~repro.service.errors
        .DeadlineExceededError` instead of hanging the router and everything
        queued behind this request.
        """
        limit = deadline if deadline is not None else _FAN_DEADLINE
        gathered = asyncio.gather(*futures, return_exceptions=True)
        try:
            results = await asyncio.wait_for(gathered, timeout=limit)
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                "shard fan-out exceeded its %.0f s deadline" % (limit,)
            ) from None
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    async def _fan(self, message: dict[str, Any]) -> list[Any]:
        """Send one message to every shard; per-shard results in shard order."""
        self._require_started()
        self._require_all_shards()
        return await self._gather(
            [self.workers.submit(shard, message) for shard in range(self.num_shards)]
        )

    # ------------------------------------------------------------ tenant ops
    def _tenant_shard(self, tenant: str) -> int:
        """Owning shard of a tenant (hashed ahead of the key partition)."""
        shard = shard_of(tenant, self.num_shards)
        self._require_started()
        if not self.workers.alive(shard):
            raise ShardUnavailableError("shard %d is down" % (shard,))
        return shard

    async def _tenant_submit(self, tenant: str | None, message: dict[str, Any]) -> Any:
        name = TenantPool._require_tenant(tenant)
        shard = self._tenant_shard(name)
        results = await self._gather([self.workers.submit(shard, message)])
        return results[0]

    async def tenant_create(
        self, tenant: str, overrides: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        message: dict[str, Any] = {"op": "tenant_create", "tenant": tenant}
        if overrides is not None:
            message["config"] = overrides
        return await self._tenant_submit(tenant, message)

    async def tenant_delete(self, tenant: str) -> dict[str, Any]:
        return await self._tenant_submit(tenant, {"op": "tenant_delete", "tenant": tenant})

    async def tenant_stats(self, tenant: str) -> dict[str, Any]:
        return await self._tenant_submit(tenant, {"op": "tenant_stats", "tenant": tenant})

    async def tenant_list(self) -> list[dict[str, Any]]:
        listings = await self._fan({"op": "tenant_list"})
        merged = [entry for listing in listings for entry in listing]
        return sorted(merged, key=lambda entry: entry["tenant"])

    async def sweep(self) -> dict[str, Any]:
        reports = await self._fan({"op": "pool_sweep"})
        return {
            "accounted_bytes": sum(int(report["accounted_bytes"]) for report in reports),
            "memory_budget_bytes": self.config.memory_budget_bytes,
            "resident": sum(int(report["resident"]) for report in reports),
            "evicted": [tenant for report in reports for tenant in report["evicted"]],
        }

    # ---------------------------------------------------------------- ingest
    async def ingest(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
        site: int = 0,
        tenant: str | None = None,
        client_id: str | None = None,
        seq: int | None = None,
    ) -> int:
        """Partition one chunk across shards and await every worker's ack.

        Validation is all-or-nothing: every sub-chunk is checked against its
        shard's high-water mark (and every target shard's health) before the
        first byte is submitted, then the marks are advanced and the
        sub-chunks written back-to-back with no suspension point in between
        — concurrent callers cannot interleave a conflicting chunk into the
        middle of the fan-out.

        A ``(client_id, seq)`` retry identity makes partial fan-out failures
        recoverable: the seq is recorded before anything is submitted, and a
        retried chunk skips the per-shard clock pre-flight (its first attempt
        already advanced the marks) and is re-fanned with the identity
        attached, so each worker either applies it or dedups it — the ack
        the client finally sees covers every shard exactly once.
        """
        if self._stopping or not self._started:
            raise ServiceStoppedError("service is not accepting ingest")
        n = len(keys)
        if n == 0:
            raise IngestRejectedError("empty ingest chunk")
        if self.config.pool:
            # Forward the whole chunk to the tenant's owner shard; validation
            # (including the per-tenant clock high-water mark) happens in the
            # worker's tenant service, which is the ordering authority.
            result = await self._tenant_submit(
                tenant,
                {
                    "op": "ingest",
                    "tenant": tenant,
                    "keys": list(keys),
                    "clocks": list(clocks),
                    "values": list(values) if values is not None else None,
                    "site": site,
                },
            )
            self.records_ingested += n
            self.ingest_batches += 1
            return int(result["accepted"])
        if len(clocks) != n:
            raise IngestRejectedError(
                "clocks length %d does not match keys length %d" % (len(clocks), n)
            )
        if values is not None and len(values) != n:
            raise IngestRejectedError(
                "values length %d does not match keys length %d" % (len(values), n)
            )
        validate_clock_column(clocks, None)
        if values is not None:
            validate_values_column(values)
        mode = self.config.mode
        validate_keys_for_mode(keys, mode, self.config.universe_bits)
        retry = False
        if client_id is not None and seq is not None:
            recorded = self._client_seqs.get(client_id)
            retry = recorded is not None and seq <= recorded

        if mode == "multisite":
            if not isinstance(site, int) or isinstance(site, bool) or not (
                0 <= site < self.config.sites
            ):
                raise IngestRejectedError(
                    "site must be an integer in [0, %d), got %r" % (self.config.sites, site)
                )
            shard = self._site_shard[site]
            parts = {
                shard: {
                    "op": "ingest",
                    "keys": list(keys),
                    "clocks": list(clocks),
                    "values": list(values) if values is not None else None,
                    "site": self._site_local[site],
                }
            }
        elif self.num_shards == 1:
            parts = {
                0: {
                    "op": "ingest",
                    "keys": list(keys),
                    "clocks": list(clocks),
                    "values": list(values) if values is not None else None,
                    "site": 0,
                }
            }
        else:
            parts = self._partition(keys, clocks, values)

        # Pre-flight every target shard, then advance all marks and submit
        # all sub-chunks synchronously (no awaits until the gather).  A
        # retry skips the clock pre-flight: its first attempt already
        # advanced these marks, so re-checking would self-reject it.
        for shard, message in parts.items():
            if not self.workers.alive(shard):
                raise ShardUnavailableError("shard %d is down" % (shard,))
            if retry:
                continue
            mark = self._high_water[shard]
            first = message["clocks"][0]
            if mark is not None and first < mark:
                raise ClockRegressionError(
                    "shard %d: out-of-order clock %r (high-water mark %r); arrival "
                    "clocks must be non-decreasing per shard" % (shard, first, mark)
                )
        if client_id is not None and seq is not None and not retry:
            # Recorded before the fan-out, not after: if the gather fails
            # midway the chunk may have reached some shards, and the retry
            # must be recognized as such.
            self._note_client_seq(client_id, seq)
        futures = []
        for shard, message in parts.items():
            if client_id is not None and seq is not None:
                message["client"] = client_id
                message["seq"] = seq
            mark = self._high_water[shard]
            last = message["clocks"][-1]
            if mark is None or last > mark:
                self._high_water[shard] = last
            futures.append(self.workers.submit(shard, message))
        await self._gather(futures)
        if not retry:
            self.records_ingested += n
            self.ingest_batches += 1
        return n

    def _note_client_seq(self, client_id: str, seq: int) -> None:
        """Record a client's fan-out seq; LRU-evict beyond the dedup cap."""
        previous = self._client_seqs.pop(client_id, None)
        self._client_seqs[client_id] = (
            seq if previous is None or seq > previous else previous
        )
        limit = self.config.dedup_clients
        while len(self._client_seqs) > limit:
            self._client_seqs.pop(next(iter(self._client_seqs)))

    def _partition(
        self,
        keys: Sequence[Hashable],
        clocks: Sequence[float],
        values: Sequence[int] | None,
    ) -> dict[int, dict[str, Any]]:
        shard_ids = shard_column(keys, self.num_shards)
        parts: dict[int, dict[str, Any]] = {}
        for index, shard in enumerate(shard_ids):
            message = parts.get(shard)
            if message is None:
                message = parts[shard] = {
                    "op": "ingest",
                    "keys": [],
                    "clocks": [],
                    "values": [] if values is not None else None,
                    "site": 0,
                }
            message["keys"].append(keys[index])
            message["clocks"].append(clocks[index])
            if values is not None:
                message["values"].append(values[index])
        return parts

    async def drain(self, tenant: str | None = None) -> Any:
        """Barrier: resolves once every shard has applied its acknowledged
        arrivals.  Raises :class:`ShardUnavailableError` if any shard is
        down (its acknowledged tail cannot be applied)."""
        if self.config.pool:
            if tenant is not None:
                return await self._tenant_submit(tenant, {"op": "drain", "tenant": tenant})
            results = await self._fan({"op": "drain"})
            clocks = [result.get("applied_clock") for result in results]
            finite = [clock for clock in clocks if clock is not None]
            return {"applied_clock": max(finite) if finite else None}
        await self._fan({"op": "drain"})
        return None

    async def expire_now(self, tenant: str | None = None) -> Any:
        if self.config.pool:
            if tenant is not None:
                return await self._tenant_submit(tenant, {"op": "expire", "tenant": tenant})
            results = await self._fan({"op": "expire"})
            return {"applied_clock": None, "swept": [result.get("swept") for result in results]}
        await self._fan({"op": "expire"})
        return None

    # --------------------------------------------------------------- queries
    async def query(self, op: str, message: dict[str, Any]) -> Any:
        if self.config.pool:
            # A tenant lives wholly on its owner shard: forward the query
            # verbatim, no cross-shard merge semantics involved.
            return await self._tenant_submit(message.get("tenant"), dict(message, op=op))
        handler = _ROUTER_QUERY_HANDLERS.get(op)
        if handler is None:
            raise UnknownOperationError("unknown query op %r" % (op,))
        return await handler(self, message)

    def _owner_shard(self, key: Hashable) -> int:
        shard = shard_of(key, self.num_shards)
        self._require_started()
        if not self.workers.alive(shard):
            raise ShardUnavailableError("shard %d is down" % (shard,))
        return shard

    async def _fan_sum(self, message: dict[str, Any]) -> float:
        return float(sum(float(result) for result in await self._fan(message)))

    async def _query_point(self, message: dict[str, Any]) -> float:
        key = _require_param(message, "key")
        if self.config.mode == "multisite":
            # Every worker coordinates a block of sites; the key's frequency
            # is the sum of the per-block frequencies (Theorem 4 linearity).
            return await self._fan_sum(message)
        shard = self._owner_shard(key)
        results = await self._gather([self.workers.submit(shard, message)])
        return float(results[0])

    async def _query_arrivals(self, message: dict[str, Any]) -> float:
        return await self._fan_sum(message)

    async def _query_range(self, message: dict[str, Any]) -> float:
        return await self._fan_sum(message)

    async def _query_self_join(self, message: dict[str, Any]) -> float:
        mode = self.config.mode
        if mode == "hierarchical":
            raise ModeMismatchError("self_join is not served in hierarchical mode")
        if mode == "flat":
            # The key partition is disjoint, so F2 has no cross-shard
            # product terms: the per-shard self-joins sum exactly.
            return await self._fan_sum(message)
        # Multisite: merge every worker's root aggregate (wire-format state
        # transfer + merge_many) and self-join the merged sketch — the
        # cross-shard product terms are real here, one sketch per site block.
        payloads = await self._fan({"op": "root_state"})
        sketches = [ecm_sketch_from_dict(payload["sketch"]) for payload in payloads]
        clocks = [
            payload["round_clock"]
            for payload in payloads
            if payload.get("round_clock") is not None
        ]
        merged = sketches[0] if len(sketches) == 1 else ECMSketch.merge_many(sketches)
        now = max(clocks) if clocks else None
        return float(merged.self_join(message.get("range"), now=now))

    async def _query_staleness(self, message: dict[str, Any]) -> float:
        now = message.get("now", self.applied_clock)
        if now is None:
            raise EmptyStructureError("no arrivals applied yet")
        results = await self._fan({"op": "staleness", "now": float(now)})
        return float(max(float(result) for result in results))

    async def _query_heavy_hitters(self, message: dict[str, Any]) -> list[Any]:
        range_length = message.get("range")
        absolute = message.get("absolute")
        if absolute is None:
            phi = float(_require_param(message, "phi"))
            if not (0.0 < phi <= 1.0):
                raise ConfigurationError("phi must be in (0, 1], got %r" % (phi,))
            # Each shard sees only its own slice of the stream, so the
            # relative threshold is resolved against the global total first.
            total = await self._fan_sum({"op": "arrivals", "range": range_length})
            absolute = phi * total
        results = await self._fan(
            {"op": "heavy_hitters", "absolute": float(absolute), "range": range_length}
        )
        merged = [tuple(pair) for shard_hitters in results for pair in shard_hitters]
        return sorted(merged, key=lambda item: (-item[1], item[0]))

    async def _cumulative(
        self, upper: int, range_length: float | None, cache: dict[int, float]
    ) -> float:
        estimate = cache.get(upper)
        if estimate is None:
            estimate = await self._fan_sum(
                {"op": "range", "lo": 0, "hi": upper, "range": range_length}
            )
            cache[upper] = estimate
        return estimate

    async def _quantile_search(
        self,
        fraction: float,
        total: float,
        range_length: float | None,
        cache: dict[int, float],
    ) -> int:
        # The exact binary search of HierarchicalECMSketch.quantile, with
        # each cumulative probe answered by a fanned range query — summing
        # disjoint per-shard prefixes reproduces the unsharded cumulative.
        target = fraction * total
        lo, hi = 0, (1 << self.config.universe_bits) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if await self._cumulative(mid, range_length, cache) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo

    async def _quantile_total(self, range_length: float | None) -> float:
        total = await self._fan_sum({"op": "arrivals", "range": range_length})
        if total <= 0.0:
            raise EmptyStructureError(
                "quantile of an empty window is undefined (no in-range arrivals)"
            )
        return total

    @staticmethod
    def _validate_fraction(fraction: float) -> float:
        fraction = float(fraction)
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError("fraction must be in [0, 1], got %r" % (fraction,))
        return fraction

    async def _query_quantile(self, message: dict[str, Any]) -> int:
        fraction = self._validate_fraction(_require_param(message, "fraction"))
        range_length = message.get("range")
        total = await self._quantile_total(range_length)
        return await self._quantile_search(fraction, total, range_length, {})

    async def _query_quantiles(self, message: dict[str, Any]) -> list[int]:
        fractions = _require_param(message, "fractions")
        if not isinstance(fractions, (list, tuple)) or not fractions:
            raise InvalidParameterError("fractions must be a non-empty list")
        validated = [self._validate_fraction(fraction) for fraction in fractions]
        range_length = message.get("range")
        total = await self._quantile_total(range_length)
        cache: dict[int, float] = {}
        return [
            await self._quantile_search(fraction, total, range_length, cache)
            for fraction in validated
        ]

    async def _query_root_state(self, message: dict[str, Any]) -> Any:
        results = await self._fan(message)
        return results[0] if self.num_shards == 1 else results

    # ------------------------------------------------------------ inspection
    def info(self) -> dict[str, Any]:
        info = self.config.describe()
        info["protocol_version"] = PROTOCOL_VERSION
        return info

    async def stats(self) -> dict[str, Any]:
        """Aggregated live counters plus per-shard detail and health."""
        self._require_started()
        futures: dict[int, Awaitable[Any]] = {}
        for shard in range(self.num_shards):
            if self.workers.alive(shard):
                with contextlib.suppress(ShardUnavailableError):
                    futures[shard] = self.workers.submit(shard, {"op": "stats"})
        settled = await asyncio.gather(*futures.values(), return_exceptions=True)
        per_shard: dict[int, dict[str, Any] | None] = {
            shard: None for shard in range(self.num_shards)
        }
        for shard, result in zip(futures.keys(), settled, strict=False):
            if not isinstance(result, BaseException):
                per_shard[shard] = result

        def total(field: str) -> int:
            return sum(
                int(stats.get(field, 0)) for stats in per_shard.values() if stats is not None
            )

        applied = [
            stats.get("applied_clock")
            for stats in per_shard.values()
            if stats is not None and stats.get("applied_clock") is not None
        ]
        details = []
        for shard in range(self.num_shards):
            entry = self.workers.describe(shard)
            stats = per_shard[shard]
            if stats is not None:
                entry["records_ingested"] = stats.get("records_ingested")
                entry["applied_clock"] = stats.get("applied_clock")
                entry["pending_arrivals"] = stats.get("pending_arrivals")
                entry["memory_bytes"] = stats.get("memory_bytes")
            details.append(entry)
        supervision = self._supervisor.describe() if self._supervisor is not None else {}
        if self.config.pool:
            return {
                "mode": self.config.mode,
                "backend": self.config.backend,
                "pool": True,
                **supervision,
                "shards": self.num_shards,
                "degraded": self.degraded_shards(),
                "tenants_total": total("tenants_total"),
                "tenants_resident": total("tenants_resident"),
                "tenants_created": total("tenants_created"),
                "evictions": total("evictions"),
                "restores": total("restores"),
                "accounted_memory_bytes": total("accounted_memory_bytes"),
                "memory_budget_bytes": self.config.memory_budget_bytes,
                "records_ingested": total("records_ingested"),
                "background_errors": total("background_errors"),
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "draining": self._stopping,
                "shard_details": details,
            }
        return {
            "mode": self.config.mode,
            "backend": self.config.backend,
            "shards": self.num_shards,
            "degraded": self.degraded_shards(),
            **supervision,
            "records_ingested": total("records_ingested"),
            "ingest_batches": self.ingest_batches,
            "ingest_apply_errors": total("ingest_apply_errors"),
            "background_errors": total("background_errors"),
            "pending_arrivals": total("pending_arrivals"),
            "pending_chunks": total("pending_chunks"),
            "applied_clock": max(applied) if applied else None,
            "submitted_clock": self.applied_clock,
            "memory_bytes": total("memory_bytes"),
            "synopsis_bytes": total("synopsis_bytes"),
            "snapshots_written": self.snapshots_written,
            "last_snapshot_path": self.last_snapshot_path,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "draining": self._stopping,
            "shard_details": details,
        }

    # ----------------------------------------------------------- persistence
    async def snapshot_async(
        self, path: str | None = None, tenant: str | None = None
    ) -> str:
        """Fan per-shard snapshots out, then atomically write the manifest.

        Shard snapshots are epoch-versioned (``<base>.shard<k>.e<epoch>``)
        and the manifest is replaced last: a crash mid-snapshot leaves the
        previous manifest pointing at the previous epoch's intact files.
        Superseded epoch files are unlinked best-effort afterwards.  Refuses
        to snapshot while degraded — a manifest missing live shards would
        restore into silent data loss.
        """
        self._require_started()
        if self.config.pool:
            # Pooled workers snapshot their own tenants into per-shard pool
            # directories; the SQLite catalogs are the manifest, so there is
            # no router-level manifest file to write.
            if tenant is not None:
                result = await self._tenant_submit(
                    tenant, {"op": "snapshot", "tenant": tenant, "path": path}
                )
                self.last_snapshot_path = str(result["path"])
                return self.last_snapshot_path
            await self._fan({"op": "snapshot"})
            self.snapshots_written += 1
            assert self.config.pool_dir is not None
            self.last_snapshot_path = self.config.pool_dir
            return self.config.pool_dir
        base = path if path is not None else self.config.snapshot_path
        if base is None:
            raise InvalidParameterError("no snapshot_path configured")
        async with self._snapshot_lock:
            self._require_all_shards()
            epoch = self._snapshot_epoch + 1
            shard_paths = {
                shard: "%s.shard%d.e%d" % (base, shard, epoch)
                for shard in range(self.num_shards)
            }
            await self._gather(
                [
                    self.workers.submit(
                        shard, {"op": "snapshot", "path": shard_paths[shard]}
                    )
                    for shard in range(self.num_shards)
                ]
            )
            manifest = {
                "kind": MANIFEST_KIND,
                "version": MANIFEST_VERSION,
                "partition": PARTITION_SCHEME,
                "epoch": epoch,
                "config": self.config.to_dict(),
                "shards": [
                    {"shard": shard, "path": shard_paths[shard]}
                    for shard in range(self.num_shards)
                ],
            }
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, write_snapshot, base, manifest)
            superseded = [
                old_path
                for old_path in self._restore_paths.values()
                if old_path not in shard_paths.values()
            ]
            self._restore_paths = shard_paths
            self._snapshot_epoch = epoch
            for old_path in superseded:
                with contextlib.suppress(OSError):
                    os.unlink(old_path)
        self.snapshots_written += 1
        self.last_snapshot_path = base
        return base

    async def restart_shard(self, shard: int) -> dict[str, Any]:
        """Respawn one worker, restoring its last per-shard snapshot.

        The shard's high-water mark is reset to the worker's restored clock,
        so a replay client can re-send everything after the last snapshot —
        the recovery contract is snapshot-granular, exactly like the
        single-process service.
        """
        self._require_started()
        if not (0 <= shard < self.num_shards):
            raise InvalidParameterError(
                "shard must be in [0, %d), got %r" % (self.num_shards, shard)
            )
        restore = self._restore_paths.get(shard)
        if restore is not None and not os.path.exists(restore):
            restore = None
        await self.workers.restart(shard, restore)
        stats = (await self._gather([self.workers.submit(shard, {"op": "stats"})]))[0]
        self._high_water[shard] = stats.get("applied_clock")
        return {
            "shard": shard,
            "restored_from": restore,
            "applied_clock": self._high_water[shard],
        }

    async def forward_failpoint(self, shard: int, message: dict[str, Any]) -> Any:
        """Forward a ``failpoint`` op to one worker (chaos fault targeting).

        Runtime arming through the protocol, rather than the environment, is
        what keeps supervised chaos bounded: a respawned worker boots with a
        clean failpoint registry instead of re-arming a kill from an
        inherited variable and dying in a loop.
        """
        self._require_started()
        if not (0 <= shard < self.num_shards):
            raise InvalidParameterError(
                "shard must be in [0, %d), got %r" % (self.num_shards, shard)
            )
        forwarded = {
            key: value for key, value in message.items() if key not in ("shard", "id")
        }
        results = await self._gather([self.workers.submit(shard, forwarded)])
        return results[0]

    def __repr__(self) -> str:
        return "ShardRouter(mode=%s, shards=%d, ingested=%d, degraded=%r)" % (
            self.config.mode,
            self.num_shards,
            self.records_ingested,
            self.degraded_shards(),
        )


_ROUTER_QUERY_HANDLERS: dict[
    str, Callable[[ShardRouter, dict[str, Any]], Awaitable[Any]]
] = {
    "point": ShardRouter._query_point,
    "range": ShardRouter._query_range,
    "heavy_hitters": ShardRouter._query_heavy_hitters,
    "quantile": ShardRouter._query_quantile,
    "quantiles": ShardRouter._query_quantiles,
    "self_join": ShardRouter._query_self_join,
    "arrivals": ShardRouter._query_arrivals,
    "staleness": ShardRouter._query_staleness,
    "root_state": ShardRouter._query_root_state,
}
